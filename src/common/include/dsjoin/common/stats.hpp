// Streaming statistics used throughout the experiments: Welford running
// moments, fixed-bucket histograms, and exact quantiles over retained
// samples. Figure 6 reports mean +/- one standard deviation of the DFT
// reconstruction MSE; these types back that and every other measured series.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dsjoin::common {

/// Numerically stable running mean / variance / extrema (Welford).
class RunningStats {
 public:
  /// Incorporates one observation.
  void add(double x) noexcept;

  /// Merges another accumulator (parallel Welford combination).
  void merge(const RunningStats& other) noexcept;

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two observations.
  double variance() const noexcept;
  /// Population variance (n denominator); 0 for zero observations.
  double population_variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return n_ > 0 ? min_ : 0.0; }
  double max() const noexcept { return n_ > 0 ? max_ : 0.0; }
  double sum() const noexcept { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-width bucket histogram over [lo, hi); out-of-range observations are
/// clamped into the first / last bucket and counted separately.
class Histogram {
 public:
  /// @param lo,hi   value range; hi must exceed lo.
  /// @param buckets number of equal-width buckets, >= 1.
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x) noexcept;

  std::size_t bucket_count() const noexcept { return counts_.size(); }
  std::uint64_t bucket(std::size_t i) const noexcept { return counts_[i]; }
  /// Inclusive lower edge of bucket i.
  double bucket_lo(std::size_t i) const noexcept;
  std::uint64_t total() const noexcept { return total_; }
  std::uint64_t underflow() const noexcept { return underflow_; }
  std::uint64_t overflow() const noexcept { return overflow_; }

  /// Value below which the given fraction q in [0,1] of observations fall
  /// (linear interpolation inside the bucket).
  double quantile(double q) const noexcept;

 private:
  double lo_, hi_, width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
};

/// Retains every sample for exact quantiles; suitable for the experiment
/// scales in this repository (<= a few million observations).
class SampleSet {
 public:
  void add(double x) { samples_.push_back(x); }
  std::size_t size() const noexcept { return samples_.size(); }

  /// Exact q-quantile with linear interpolation; q in [0,1].
  double quantile(double q) const;
  double mean() const noexcept;
  double stddev() const noexcept;
  /// Fraction of samples strictly below the threshold.
  double fraction_below(double threshold) const noexcept;

  const std::vector<double>& samples() const noexcept { return samples_; }

 private:
  std::vector<double> samples_;
};

}  // namespace dsjoin::common
