// Tiny command-line flag parser for the examples and bench harnesses.
//
// Supports `--name=value`, `--name value` and boolean `--name` forms; every
// flag is declared with a default and a help line, and `--help` prints the
// synthesized usage text. Unknown flags are an error so typos in experiment
// parameters fail loudly instead of silently running the default.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "dsjoin/common/status.hpp"

namespace dsjoin::common {

/// Declarative flag set.
class CliFlags {
 public:
  explicit CliFlags(std::string program_description)
      : description_(std::move(program_description)) {}

  /// Declares a flag. Call before parse(). Returns *this for chaining.
  CliFlags& add_int(std::string name, std::int64_t default_value, std::string help);
  CliFlags& add_double(std::string name, double default_value, std::string help);
  CliFlags& add_string(std::string name, std::string default_value, std::string help);
  CliFlags& add_bool(std::string name, bool default_value, std::string help);

  /// Parses argv. On `--help` prints usage and returns kFailedPrecondition so
  /// callers can exit cleanly; other failures return kInvalidArgument.
  Status parse(int argc, const char* const* argv);

  std::int64_t get_int(std::string_view name) const;
  double get_double(std::string_view name) const;
  const std::string& get_string(std::string_view name) const;
  bool get_bool(std::string_view name) const;

  /// Usage text derived from the declared flags.
  std::string usage(std::string_view program) const;

 private:
  enum class Kind { kInt, kDouble, kString, kBool };
  struct Flag {
    Kind kind;
    std::string help;
    std::string value;  // textual; converted on read
  };

  const Flag* find(std::string_view name, Kind kind) const;

  std::string description_;
  std::map<std::string, Flag, std::less<>> flags_;
};

}  // namespace dsjoin::common
