// Runtime-dispatched SIMD kernels for the summary hot path.
//
// Every kernel here is BIT-IDENTICAL to its scalar reference at every
// dispatch level; that invariant is what lets the batch pipelines
// (SlidingDft, AGMS / Fast-AGMS, counting Bloom) use these kernels without
// perturbing the cross-backend parity guarantees of DESIGN.md sections
// 8/12. Identity holds by construction:
//
//  - The integer kernels compute canonical residues mod the Mersenne prime
//    2^61 - 1 (or exact 64-bit SplitMix mixes). Modular arithmetic has one
//    canonical answer, so any correct vectorization is exact and equality
//    with the scalar path is automatic.
//  - The DFT kernels are per-lane independent IEEE-754 multiplies and adds:
//    no reassociation, no horizontal operations, and no FMA contraction
//    (the build sets -ffp-contract=off globally and the vector bodies use
//    explicit mul/add intrinsics). Each vector lane therefore performs
//    exactly the rounding sequence of the scalar loop.
//
// tests/core/batch_identity_test.cpp pins kernel output at every level the
// host supports against the forced-scalar level, and the existing
// batch-vs-serial identity suites run on top of the dispatched kernels.
//
// Dispatch is process-global: the best detected level is used by default,
// `DSJOIN_SIMD=scalar|neon|avx2|avx512` caps it at startup, and
// force_level() overrides it at runtime (tests and bench columns). Levels
// the host cannot execute are clamped away, so forcing is always safe.
#pragma once

#include <cstddef>
#include <cstdint>

namespace dsjoin::common::simd {

/// Instruction-set tiers, ordered by preference. A level is only ever
/// active when the host supports it; kernels without an implementation at
/// the active level fall back to scalar (NEON covers the DFT kernels only).
enum class Level : std::uint8_t {
  kScalar = 0,
  kNeon = 1,
  kAvx2 = 2,
  kAvx512 = 3,
};

/// Human-readable level name ("scalar", "neon", "avx2", "avx512").
const char* level_name(Level level) noexcept;

/// Best level the host CPU can execute (cached CPUID / arch probe).
Level detected_level() noexcept;

/// Level kernels dispatch on right now: the forced level if one is set,
/// else the DSJOIN_SIMD-capped detected level.
Level active_level() noexcept;

/// Forces dispatch to `level`, clamped to detected_level(). Used by the
/// identity tests (compare every supported level against scalar) and by
/// bench_hotpath (the `batch` column is the forced-scalar kernel path).
void force_level(Level level) noexcept;

/// Clears a force_level() override; dispatch returns to the default.
void reset_level() noexcept;

// --- Sliding-DFT kernels (SoA complex accumulate / rotate) -----------------
//
// All arrays hold n doubles; distinct pointers must not alias. Formulas are
// exactly the scalar batch loop of SlidingDft::push_batch:
//   accum:   cr[k] += delta * pr[k];  ci[k] += delta * pi[k];
//   rotate:  (pr[k], pi[k]) <- (pr*ur - pi*ui, pr*ui + pi*ur)
// evaluated per lane in that operation order.

/// Fused accumulate-then-rotate (the non-wrap, delta != 0 step).
void dft_accum_rotate(double* cr, double* ci, double* pr, double* pi,
                      const double* ur, const double* ui, std::size_t n,
                      double delta) noexcept;

/// Accumulate only (the ring-wrap step; phases reset exactly afterwards).
void dft_accum(double* cr, double* ci, const double* pr, const double* pi,
               std::size_t n, double delta) noexcept;

/// Rotate only (the delta == 0, non-wrap step).
void dft_rotate(double* pr, double* pi, const double* ur, const double* ui,
                std::size_t n) noexcept;

// --- Mersenne-61 polynomial-hash kernels -----------------------------------
//
// Residues are canonical (in [0, 2^61-1)). `coeff` points at the four
// polynomial coefficients c0..c3 of a FourWiseHash, themselves canonical.

/// Per key: x1 = key mod 2^61-1, x2 = x1^2, x3 = x1^3 (all canonical).
/// Matches KeyPowers::of exactly.
void m61_key_powers(const std::uint64_t* keys, std::size_t n,
                    std::uint64_t* x1, std::uint64_t* x2,
                    std::uint64_t* x3) noexcept;

/// out[j] = (c3*x3[j] + c2*x2[j] + c1*x1[j] + c0) mod 2^61-1, canonical —
/// identical to FourWiseHash::eval_powers on each key.
void m61_poly_eval(const std::uint64_t* coeff, const std::uint64_t* x1,
                   const std::uint64_t* x2, const std::uint64_t* x3,
                   std::size_t n, std::uint64_t* out) noexcept;

/// sum_j (eval_powers(key_j) & 1) — the branchless sign-accumulation sum of
/// AgmsSketch::update_batch, returned as an exact integer count.
std::uint64_t m61_poly_parity_sum(const std::uint64_t* coeff,
                                  const std::uint64_t* x1,
                                  const std::uint64_t* x2,
                                  const std::uint64_t* x3,
                                  std::size_t n) noexcept;

/// One Fast-AGMS row update, fused: per key j,
///   b      = poly(bucket_coeff, key_j) mod buckets
///   row[b] += (poly(sign_coeff, key_j) & 1) ? weight : -weight
/// Both evaluations run vectorized; bucket indices and signed deltas stream
/// through a register-sized staging buffer and the counter adds themselves
/// stay scalar (duplicate bucket indices make them inherently serial).
/// Integer adds commute, so the result is bit-identical to the per-key
/// update() loop in any order. The modulo is exact (mask when `buckets` is
/// a power of two, the vector path's only fast case; otherwise the whole
/// call falls back to the scalar reference with `%`).
void fast_agms_update_row(const std::uint64_t* bucket_coeff,
                          const std::uint64_t* sign_coeff,
                          const std::uint64_t* x1, const std::uint64_t* x2,
                          const std::uint64_t* x3, std::size_t n,
                          std::uint64_t buckets, std::int64_t weight,
                          std::int64_t* row) noexcept;

// --- Window match-scan kernels (partitioned TupleStore probes) -------------
//
// Linear scans over a store partition's SoA columns: entry j matches when
// keys[j] == key and lo <= ts[j] <= hi (both bounds inclusive, IEEE-754
// ordered compares; timestamps are never NaN). Equality and ordered
// comparison have exactly one answer per lane, so every vector level is
// bit-identical to the scalar reference by construction. `keys` and `ts`
// must not alias.

/// Number of entries matching (key, [lo, hi]).
std::uint64_t match_count_scan(const std::int64_t* keys, const double* ts,
                               std::size_t n, std::int64_t key, double lo,
                               double hi) noexcept;

/// Writes the ascending indices of matching entries to `out` (which must
/// have room for n values) and returns how many matched. Index order is
/// what makes the store's for_each_match iteration order independent of
/// the dispatch level.
std::size_t match_collect_scan(const std::int64_t* keys, const double* ts,
                               std::size_t n, std::int64_t key, double lo,
                               double hi, std::uint32_t* out) noexcept;

// --- Double-hashing kernels (Bloom probes) ---------------------------------

/// SplitMix64-based double-hash preparation, identical to
/// DoubleHash::prepare: h1[j] = mix(key^seed1), h2[j] = mix(key^seed2) | 1.
void double_hash_prepare(std::uint64_t seed1, std::uint64_t seed2,
                         const std::uint64_t* keys, std::size_t n,
                         std::uint64_t* h1, std::uint64_t* h2) noexcept;

/// Probe-index table for `probes` probes over n prepared keys:
///   out[i*n + j] = (h1[j] + i*h2[j]) mod range
/// (probe-major layout so the per-probe sweep vectorizes; the index math is
/// exact wrapping u64 arithmetic, identical to DoubleHash::Prepared::index).
/// Returns false — writing nothing — when range > 2^32, in which case the
/// caller must use the per-key scalar path (indices would not fit u32).
bool double_hash_indices(const std::uint64_t* h1, const std::uint64_t* h2,
                         std::size_t n, std::uint32_t probes,
                         std::uint64_t range, std::uint32_t* out) noexcept;

}  // namespace dsjoin::common::simd
