// Binary serialization for wire messages.
//
// Frames exchanged between nodes (tuples, DFT coefficient deltas, Bloom and
// sketch snapshots, result shipments) are encoded with the little-endian
// fixed-width writer/reader below. The format is deliberately simple: the
// experiments need accurate *byte accounting* (Figure 8 reports coefficient
// bytes as a share of net data) and a robust reader that rejects truncated
// frames, not a general-purpose RPC layer.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "dsjoin/common/status.hpp"

namespace dsjoin::common {

static_assert(std::endian::native == std::endian::little,
              "dsjoin's wire format assumes a little-endian host");

/// Appends fixed-width little-endian values to a growable byte buffer.
class BufferWriter {
 public:
  BufferWriter() = default;
  explicit BufferWriter(std::size_t reserve) { buffer_.reserve(reserve); }

  void write_u8(std::uint8_t v) { append(&v, 1); }
  void write_u16(std::uint16_t v) { append(&v, 2); }
  void write_u32(std::uint32_t v) { append(&v, 4); }
  void write_u64(std::uint64_t v) { append(&v, 8); }
  void write_i64(std::int64_t v) { write_u64(static_cast<std::uint64_t>(v)); }
  void write_f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, 8);
    write_u64(bits);
  }

  /// Length-prefixed (u32) byte string.
  void write_bytes(std::span<const std::uint8_t> bytes);
  /// Length-prefixed (u32) UTF-8 string.
  void write_string(std::string_view s);
  /// Raw bytes with no length prefix (caller knows the framing).
  void write_raw(std::span<const std::uint8_t> bytes) {
    append(bytes.data(), bytes.size());
  }

  std::size_t size() const noexcept { return buffer_.size(); }
  std::span<const std::uint8_t> bytes() const noexcept { return buffer_; }
  std::vector<std::uint8_t> take() && { return std::move(buffer_); }

 private:
  void append(const void* data, std::size_t n) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    buffer_.insert(buffer_.end(), p, p + n);
  }

  std::vector<std::uint8_t> buffer_;
};

/// Reads fixed-width little-endian values from a byte span, returning
/// kDataLoss on truncation rather than reading past the end.
class BufferReader {
 public:
  explicit BufferReader(std::span<const std::uint8_t> bytes) noexcept
      : data_(bytes) {}

  Result<std::uint8_t> read_u8() { return read_fixed<std::uint8_t>(); }
  Result<std::uint16_t> read_u16() { return read_fixed<std::uint16_t>(); }
  Result<std::uint32_t> read_u32() { return read_fixed<std::uint32_t>(); }
  Result<std::uint64_t> read_u64() { return read_fixed<std::uint64_t>(); }
  Result<std::int64_t> read_i64() {
    auto r = read_u64();
    if (!r) return r.status();
    return static_cast<std::int64_t>(r.value());
  }
  Result<double> read_f64() {
    auto r = read_u64();
    if (!r) return r.status();
    double v;
    const std::uint64_t bits = r.value();
    std::memcpy(&v, &bits, 8);
    return v;
  }

  /// Length-prefixed byte string (u32 length).
  Result<std::vector<std::uint8_t>> read_bytes();
  /// Length-prefixed UTF-8 string (u32 length).
  Result<std::string> read_string();

  std::size_t remaining() const noexcept { return data_.size() - pos_; }
  bool exhausted() const noexcept { return remaining() == 0; }

 private:
  template <typename T>
  Result<T> read_fixed() {
    if (remaining() < sizeof(T)) {
      return Status(ErrorCode::kDataLoss, "truncated frame");
    }
    T v;
    std::memcpy(&v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace dsjoin::common
