// Lightweight error handling: Status and Result<T>.
//
// The hot paths of the system (per-tuple processing in nodes and transports)
// must not throw; fallible operations return Status / Result<T> instead.
// Exceptions remain in use for programming errors and unrecoverable setup
// failures, following the C++ Core Guidelines (E.*) split between expected
// and unexpected failures.
#pragma once

#include <cassert>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace dsjoin::common {

/// Error categories used across the project.
enum class ErrorCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kFailedPrecondition,
  kNotFound,
  kAlreadyExists,
  kResourceExhausted,
  kUnavailable,      // transient transport failures
  kDataLoss,         // truncated / corrupt frames
  kInternal,
};

/// Human-readable name of an ErrorCode.
std::string_view to_string(ErrorCode code) noexcept;

/// A success-or-error value without a payload.
class [[nodiscard]] Status {
 public:
  /// Success.
  Status() noexcept : code_(ErrorCode::kOk) {}

  /// Failure with a category and message. kOk must not be paired with a
  /// message; use the default constructor for success.
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    assert(code_ != ErrorCode::kOk);
  }

  static Status ok() noexcept { return Status(); }

  bool is_ok() const noexcept { return code_ == ErrorCode::kOk; }
  explicit operator bool() const noexcept { return is_ok(); }

  ErrorCode code() const noexcept { return code_; }
  const std::string& message() const noexcept { return message_; }

  /// "OK" or "<code>: <message>".
  std::string to_string() const;

 private:
  ErrorCode code_;
  std::string message_;
};

/// A value of type T or a Status explaining why it is absent.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit from a value: `return computed_value;`.
  Result(T value) : data_(std::move(value)) {}  // NOLINT(google-explicit-constructor)

  /// Implicit from an error status: `return Status(...);`. The status must
  /// not be OK (an OK status carries no value).
  Result(Status status) : data_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    assert(!std::get<Status>(data_).is_ok());
  }

  bool is_ok() const noexcept { return std::holds_alternative<T>(data_); }
  explicit operator bool() const noexcept { return is_ok(); }

  /// The contained value. Precondition: is_ok().
  const T& value() const& {
    assert(is_ok());
    return std::get<T>(data_);
  }
  T& value() & {
    assert(is_ok());
    return std::get<T>(data_);
  }
  T&& value() && {
    assert(is_ok());
    return std::get<T>(std::move(data_));
  }

  /// The error. Precondition: !is_ok().
  const Status& status() const {
    assert(!is_ok());
    return std::get<Status>(data_);
  }

  /// Value if present, otherwise `fallback`.
  T value_or(T fallback) const& { return is_ok() ? value() : std::move(fallback); }

 private:
  std::variant<T, Status> data_;
};

}  // namespace dsjoin::common
