// Fixed-size batch thread pool.
//
// The parallel simulator driver executes one "epoch" of per-node work at a
// time: it hands the pool a batch of tasks (one per busy node), blocks until
// every task finished, and repeats — thousands of small batches over one
// run. The pool is therefore built for cheap reuse rather than generality:
//
//  * a fixed set of workers, started once and joined in the destructor;
//  * no work stealing and no task queue growth — a batch is an immutable
//    vector and workers claim indices with one atomic counter, so the
//    assignment of tasks to threads never affects observable results
//    (tasks must not depend on which thread runs them);
//  * exceptions thrown by tasks are captured per task and rethrown to the
//    caller of run_batch() — the lowest-index failure wins, which keeps
//    error reporting deterministic too.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dsjoin::common {

class ThreadPool {
 public:
  /// Starts `workers` threads. The caller of run_batch() always helps drain
  /// the batch, so ThreadPool(0) is a valid degenerate pool that runs
  /// everything on the calling thread, and ThreadPool(n) yields n + 1
  /// concurrent execution strands during a batch.
  explicit ThreadPool(std::size_t workers);

  /// Signals the workers and joins them. Must not be called while a
  /// run_batch() is in flight on another thread.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t worker_count() const noexcept { return threads_.size(); }

  /// Runs every task and blocks until all have finished. If any task threw,
  /// the exception of the lowest-index failing task is rethrown after the
  /// whole batch completed (remaining tasks still run). Reentrant calls and
  /// calls from worker threads are not supported.
  void run_batch(std::vector<std::function<void()>>& tasks);

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable work_cv_;   // workers wait for a new batch
  std::condition_variable done_cv_;   // caller waits for batch completion
  std::vector<std::function<void()>>* batch_ = nullptr;
  std::vector<std::exception_ptr> errors_;  // one slot per task of the batch
  std::uint64_t generation_ = 0;      // bumped per batch; wakes the workers
  std::size_t next_task_ = 0;         // claim index into *batch_
  std::size_t unfinished_ = 0;        // tasks not yet completed
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace dsjoin::common
