// Deterministic pseudo-random number generation for dsjoin.
//
// All stochastic components of the system (workload generators, the WAN
// emulator's latency draws, the probabilistic flow filters) draw from the
// generators defined here so that every experiment is reproducible from a
// single 64-bit seed.
#pragma once

#include <cstdint>
#include <limits>

namespace dsjoin::common {

/// SplitMix64: a tiny, statistically solid generator used both directly and
/// to seed Xoshiro256** (as recommended by its authors).
class SplitMix64 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  /// Next 64 uniformly distributed bits.
  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  constexpr std::uint64_t operator()() noexcept { return next(); }

  static constexpr std::uint64_t min() noexcept { return 0; }
  static constexpr std::uint64_t max() noexcept {
    return std::numeric_limits<std::uint64_t>::max();
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256**: the project's default generator. Fast (sub-ns per draw),
/// 256-bit state, passes BigCrush; satisfies UniformRandomBitGenerator so it
/// can also drive <random> distributions where convenient.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from one 64-bit seed via SplitMix64.
  explicit constexpr Xoshiro256(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  constexpr std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  constexpr std::uint64_t operator()() noexcept { return next(); }

  /// Uniform double in [0, 1) with 53 bits of randomness.
  constexpr double next_double() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound). Uses Lemire's multiply-shift reduction
  /// (negligible bias for the bounds used in this project).
  constexpr std::uint64_t next_below(std::uint64_t bound) noexcept {
    __extension__ using uint128 = unsigned __int128;
    const auto wide = static_cast<uint128>(next()) * static_cast<uint128>(bound);
    return static_cast<std::uint64_t>(wide >> 64);
  }

  /// Uniform integer in the closed range [lo, hi].
  constexpr std::int64_t next_in(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [lo, hi).
  constexpr double next_double_in(double lo, double hi) noexcept {
    return lo + (hi - lo) * next_double();
  }

  /// Bernoulli draw with success probability p (clamped to [0,1]).
  constexpr bool next_bool(double p) noexcept {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return next_double() < p;
  }

  /// Standard-normal draw (Box-Muller on cached pairs is avoided to keep the
  /// generator stateless across call sites; the polar method is used inline).
  double next_gaussian() noexcept;

  /// Exponential draw with the given rate (mean 1/rate).
  double next_exponential(double rate) noexcept;

  /// Derives an independent child generator; used to give each node/stream
  /// its own deterministic sub-stream from one experiment seed.
  constexpr Xoshiro256 fork() noexcept { return Xoshiro256(next()); }

  static constexpr std::uint64_t min() noexcept { return 0; }
  static constexpr std::uint64_t max() noexcept {
    return std::numeric_limits<std::uint64_t>::max();
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace dsjoin::common
