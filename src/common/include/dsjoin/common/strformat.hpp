// printf-style std::string formatting.
//
// The toolchain in use (libstdc++ 12) does not ship <format>, so the project
// formats through vsnprintf with compile-time format-string checking via the
// GNU `format` attribute.
#pragma once

#include <string>

namespace dsjoin::common {

/// Returns the printf-formatted string. Format errors are compile-time
/// diagnostics thanks to the format attribute.
[[gnu::format(printf, 1, 2)]] std::string str_format(const char* fmt, ...);

}  // namespace dsjoin::common
