// Aligned-text table and CSV emission for the bench harnesses.
//
// Every figure/table reproduction prints two artifacts: a human-readable
// aligned table (what you eyeball against the paper) and a machine-readable
// CSV block (what a plotting script consumes). TablePrinter produces both
// from one row stream.
#pragma once

#include <cstdio>
#include <string>
#include <type_traits>
#include <vector>

#include "dsjoin/common/strformat.hpp"

namespace dsjoin::common {

/// Collects rows of stringified cells and renders them aligned and/or as CSV.
class TablePrinter {
 public:
  /// @param title   printed above the table (e.g. "Figure 9 (Zipf)").
  /// @param columns header cells.
  TablePrinter(std::string title, std::vector<std::string> columns);

  /// Appends a row; the number of cells must match the header.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats each argument with "{}"/"{:.4g}"-style defaults.
  template <typename... Args>
  void add(Args&&... args) {
    add_row({cell(std::forward<Args>(args))...});
  }

  /// Renders the aligned table to the given stream (default stdout).
  void print(std::FILE* out = stdout) const;

  /// Renders an RFC-4180-ish CSV block, prefixed with "# csv <title>".
  void print_csv(std::FILE* out = stdout) const;

  std::size_t row_count() const noexcept { return rows_.size(); }

 private:
  static std::string cell(const std::string& s) { return s; }
  static std::string cell(const char* s) { return s; }
  static std::string cell(double v) { return str_format("%.6g", v); }
  static std::string cell(float v) { return str_format("%.6g", v); }
  template <typename T>
    requires std::is_integral_v<T>
  static std::string cell(T v) {
    if constexpr (std::is_signed_v<T>) {
      return str_format("%lld", static_cast<long long>(v));
    } else {
      return str_format("%llu", static_cast<unsigned long long>(v));
    }
  }

  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dsjoin::common
