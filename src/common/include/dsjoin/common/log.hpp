// Minimal leveled logging.
//
// The library itself is quiet by default; the examples and benches raise the
// level when narrating runs. Logging is printf-style (with compile-time
// format checking) and thread-safe at the line level, which is all the TCP
// transport needs.
#pragma once

#include <string_view>

namespace dsjoin::common {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global threshold; messages below it are discarded.
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// Emits one formatted line to stderr with a level tag and a monotonic
/// timestamp, if `level` passes the global threshold.
[[gnu::format(printf, 2, 3)]] void log(LogLevel level, const char* fmt, ...);

namespace detail {
void emit(LogLevel level, std::string_view message);
}  // namespace detail

#define DSJOIN_LOG_DEBUG(...) ::dsjoin::common::log(::dsjoin::common::LogLevel::kDebug, __VA_ARGS__)
#define DSJOIN_LOG_INFO(...) ::dsjoin::common::log(::dsjoin::common::LogLevel::kInfo, __VA_ARGS__)
#define DSJOIN_LOG_WARN(...) ::dsjoin::common::log(::dsjoin::common::LogLevel::kWarn, __VA_ARGS__)
#define DSJOIN_LOG_ERROR(...) ::dsjoin::common::log(::dsjoin::common::LogLevel::kError, __VA_ARGS__)

}  // namespace dsjoin::common
