#include "dsjoin/common/simd.hpp"

#include <atomic>
#include <bit>
#include <cstdlib>
#include <cstring>
#include <string_view>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define DSJOIN_SIMD_X86 1
// GCC 12's AVX-512 headers trip -Wmaybe-uninitialized on the
// _mm512_undefined_* intrinsics backing _mm512_cvtepi64_epi32 and friends;
// the values are fully overwritten, so the warning is a false positive.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif
#include <immintrin.h>
#endif
#if defined(__aarch64__)
#define DSJOIN_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace dsjoin::common::simd {

namespace {

constexpr std::uint64_t kM61 = (std::uint64_t{1} << 61) - 1;

// ---------------------------------------------------------------------------
// Scalar reference kernels. These restate the exact arithmetic of the batch
// callers (KeyPowers::of, FourWiseHash::eval_powers, DoubleHash::prepare);
// the identity tests pin the vector levels against these, and the batch-vs-
// serial suites pin these against the per-tuple scalar paths.
// ---------------------------------------------------------------------------

inline std::uint64_t mulmod_m61(std::uint64_t a, std::uint64_t b) noexcept {
  __extension__ using uint128 = unsigned __int128;
  const uint128 prod = static_cast<uint128>(a) * static_cast<uint128>(b);
  std::uint64_t r = static_cast<std::uint64_t>(prod & kM61) +
                    static_cast<std::uint64_t>(prod >> 61);
  if (r >= kM61) r -= kM61;
  return r;
}

inline std::uint64_t poly_eval_one(std::uint64_t c0, std::uint64_t c1,
                                   std::uint64_t c2, std::uint64_t c3,
                                   std::uint64_t x1, std::uint64_t x2,
                                   std::uint64_t x3) noexcept {
  // Lazy 128-bit accumulation with a final double fold, exactly as
  // FourWiseHash::eval_powers (each product < 2^122, the sum < 2^124).
  // Coefficients arrive in registers: callers hoist the loads out of their
  // loops, since counter stores would otherwise force a reload per key
  // (u64 coefficient reads alias i64/u16 counter writes under TBAA).
  __extension__ using uint128 = unsigned __int128;
  uint128 s = static_cast<uint128>(c3) * x3;
  s += static_cast<uint128>(c2) * x2;
  s += static_cast<uint128>(c1) * x1;
  s += c0;
  std::uint64_t r = static_cast<std::uint64_t>(s & kM61) +
                    static_cast<std::uint64_t>(s >> 61);
  r = (r & kM61) + (r >> 61);
  if (r >= kM61) r -= kM61;
  return r;
}

void key_powers_scalar(const std::uint64_t* keys, std::size_t n,
                       std::uint64_t* x1, std::uint64_t* x2,
                       std::uint64_t* x3) noexcept {
  for (std::size_t j = 0; j < n; ++j) {
    const std::uint64_t v1 = keys[j] % kM61;
    const std::uint64_t v2 = mulmod_m61(v1, v1);
    x1[j] = v1;
    x2[j] = v2;
    x3[j] = mulmod_m61(v2, v1);
  }
}

void poly_eval_scalar(const std::uint64_t* c, const std::uint64_t* x1,
                      const std::uint64_t* x2, const std::uint64_t* x3,
                      std::size_t n, std::uint64_t* out) noexcept {
  const std::uint64_t c0 = c[0], c1 = c[1], c2 = c[2], c3 = c[3];
  for (std::size_t j = 0; j < n; ++j) {
    out[j] = poly_eval_one(c0, c1, c2, c3, x1[j], x2[j], x3[j]);
  }
}

std::uint64_t parity_sum_scalar(const std::uint64_t* c, const std::uint64_t* x1,
                                const std::uint64_t* x2, const std::uint64_t* x3,
                                std::size_t n) noexcept {
  const std::uint64_t c0 = c[0], c1 = c[1], c2 = c[2], c3 = c[3];
  std::uint64_t bits = 0;
  for (std::size_t j = 0; j < n; ++j) {
    bits += poly_eval_one(c0, c1, c2, c3, x1[j], x2[j], x3[j]) & 1u;
  }
  return bits;
}

void fast_agms_row_scalar(const std::uint64_t* bucket_coeff,
                          const std::uint64_t* sign_coeff,
                          const std::uint64_t* x1, const std::uint64_t* x2,
                          const std::uint64_t* x3, std::size_t n,
                          std::uint64_t buckets, std::int64_t weight,
                          std::int64_t* row) noexcept {
  // The sign is applied as 2*weight*parity - weight (== weight * sign(),
  // odd hash -> +1), matching FastAgmsSketch::update exactly.
  const std::uint64_t b0 = bucket_coeff[0], b1 = bucket_coeff[1];
  const std::uint64_t b2 = bucket_coeff[2], b3 = bucket_coeff[3];
  const std::uint64_t s0 = sign_coeff[0], s1 = sign_coeff[1];
  const std::uint64_t s2 = sign_coeff[2], s3 = sign_coeff[3];
  const bool pow2 = buckets != 0 && std::has_single_bit(buckets);
  const std::uint64_t mask = buckets - 1;
  const std::int64_t w2 = 2 * weight;
  for (std::size_t j = 0; j < n; ++j) {
    const std::uint64_t h = poly_eval_one(b0, b1, b2, b3, x1[j], x2[j], x3[j]);
    const std::uint64_t b = pow2 ? (h & mask) : (h % buckets);
    row[b] += w2 * static_cast<std::int64_t>(
                       poly_eval_one(s0, s1, s2, s3, x1[j], x2[j], x3[j]) & 1u) -
              weight;
  }
}

inline std::uint64_t splitmix(std::uint64_t z) noexcept {
  // Must stay byte-for-byte the mix of DoubleHash (hash.hpp); the Bloom
  // identity tests pin prepared batches against DoubleHash::prepare.
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

void prepare_scalar(std::uint64_t seed1, std::uint64_t seed2,
                    const std::uint64_t* keys, std::size_t n, std::uint64_t* h1,
                    std::uint64_t* h2) noexcept {
  for (std::size_t j = 0; j < n; ++j) {
    h1[j] = splitmix(keys[j] ^ seed1);
    h2[j] = splitmix(keys[j] ^ seed2) | 1u;
  }
}

void indices_scalar(const std::uint64_t* h1, const std::uint64_t* h2,
                    std::size_t n, std::uint32_t probes, std::uint64_t range,
                    std::uint32_t* out) noexcept {
  const bool pow2 = range != 0 && std::has_single_bit(range);
  const std::uint64_t mask = range - 1;
  for (std::uint32_t i = 0; i < probes; ++i) {
    std::uint32_t* row = out + static_cast<std::size_t>(i) * n;
    const std::uint64_t iu = i;
    if (pow2) {
      for (std::size_t j = 0; j < n; ++j) {
        row[j] = static_cast<std::uint32_t>((h1[j] + iu * h2[j]) & mask);
      }
    } else {
      for (std::size_t j = 0; j < n; ++j) {
        row[j] = static_cast<std::uint32_t>((h1[j] + iu * h2[j]) % range);
      }
    }
  }
}

void dft_accum_rotate_scalar(double* cr, double* ci, double* pr, double* pi,
                             const double* ur, const double* ui, std::size_t n,
                             double delta) noexcept {
  for (std::size_t k = 0; k < n; ++k) {
    cr[k] += delta * pr[k];
    ci[k] += delta * pi[k];
    const double npr = pr[k] * ur[k] - pi[k] * ui[k];
    const double npi = pr[k] * ui[k] + pi[k] * ur[k];
    pr[k] = npr;
    pi[k] = npi;
  }
}

void dft_accum_scalar(double* cr, double* ci, const double* pr,
                      const double* pi, std::size_t n, double delta) noexcept {
  for (std::size_t k = 0; k < n; ++k) {
    cr[k] += delta * pr[k];
    ci[k] += delta * pi[k];
  }
}

void dft_rotate_scalar(double* pr, double* pi, const double* ur,
                       const double* ui, std::size_t n) noexcept {
  for (std::size_t k = 0; k < n; ++k) {
    const double npr = pr[k] * ur[k] - pi[k] * ui[k];
    const double npi = pr[k] * ui[k] + pi[k] * ur[k];
    pr[k] = npr;
    pi[k] = npi;
  }
}

std::uint64_t match_count_scalar(const std::int64_t* keys, const double* ts,
                                 std::size_t n, std::int64_t key, double lo,
                                 double hi) noexcept {
  std::uint64_t count = 0;
  for (std::size_t j = 0; j < n; ++j) {
    if (keys[j] == key && ts[j] >= lo && ts[j] <= hi) ++count;
  }
  return count;
}

std::size_t match_collect_scalar(const std::int64_t* keys, const double* ts,
                                 std::size_t n, std::int64_t key, double lo,
                                 double hi, std::uint32_t* out) noexcept {
  std::size_t count = 0;
  for (std::size_t j = 0; j < n; ++j) {
    if (keys[j] == key && ts[j] >= lo && ts[j] <= hi) {
      out[count++] = static_cast<std::uint32_t>(j);
    }
  }
  return count;
}

// ---------------------------------------------------------------------------
// AVX2 kernels. Compiled with per-function target attributes so the
// translation unit builds at the portable baseline; dispatch guarantees
// these only run on hosts with AVX2.
// ---------------------------------------------------------------------------
#if DSJOIN_SIMD_X86

#define DSJOIN_AVX2 __attribute__((target("avx2")))
#define DSJOIN_AVX512 __attribute__((target("avx512f,avx512dq")))

// r < 2^62 (sign bit clear, so the signed compare is an unsigned one):
// canonicalize with a single conditional subtract of p.
DSJOIN_AVX2 inline __m256i m61_cond_sub4(__m256i r) noexcept {
  const __m256i p = _mm256_set1_epi64x(static_cast<long long>(kM61));
  const __m256i gt =
      _mm256_cmpgt_epi64(r, _mm256_set1_epi64x(static_cast<long long>(kM61 - 1)));
  return _mm256_sub_epi64(r, _mm256_and_si256(gt, p));
}

// key (any u64) -> canonical residue: (k & M) + (k >> 61) < 2^61 + 7, then
// one conditional subtract. Equals keys[j] % kM61.
DSJOIN_AVX2 inline __m256i m61_fold_key4(__m256i k) noexcept {
  const __m256i mask = _mm256_set1_epi64x(static_cast<long long>(kM61));
  return m61_cond_sub4(
      _mm256_add_epi64(_mm256_and_si256(k, mask), _mm256_srli_epi64(k, 61)));
}

// Canonical a*b mod 2^61-1 for canonical a, b, without a 64x64->128
// multiply: split a = a1*2^32 + a0 (a1 < 2^29) and use 2^64 == 8 and
// 2^61 == 1 (mod p). With m = a0*b1 + a1*b0 < 2^62 the sum
//   8*(a1*b1) + fold(a0*b0) + (m >> 29) + ((m & (2^29-1)) << 32)
// is < 2^63, so one fold plus one conditional subtract is canonical.
DSJOIN_AVX2 inline __m256i m61_mulmod4(__m256i a, __m256i b) noexcept {
  const __m256i mask = _mm256_set1_epi64x(static_cast<long long>(kM61));
  const __m256i a1 = _mm256_srli_epi64(a, 32);
  const __m256i b1 = _mm256_srli_epi64(b, 32);
  const __m256i ll = _mm256_mul_epu32(a, b);    // a0*b0
  const __m256i lh = _mm256_mul_epu32(a, b1);   // a0*b1
  const __m256i hl = _mm256_mul_epu32(a1, b);   // a1*b0
  const __m256i hh = _mm256_mul_epu32(a1, b1);  // a1*b1
  const __m256i m = _mm256_add_epi64(lh, hl);
  __m256i t = _mm256_slli_epi64(hh, 3);
  t = _mm256_add_epi64(
      t, _mm256_add_epi64(_mm256_and_si256(ll, mask), _mm256_srli_epi64(ll, 61)));
  t = _mm256_add_epi64(t, _mm256_srli_epi64(m, 29));
  t = _mm256_add_epi64(
      t, _mm256_slli_epi64(_mm256_and_si256(m, _mm256_set1_epi64x(0x1FFFFFFF)), 32));
  return m61_cond_sub4(
      _mm256_add_epi64(_mm256_and_si256(t, mask), _mm256_srli_epi64(t, 61)));
}

// Canonical a+b mod p for canonical a, b (sum < 2^62).
DSJOIN_AVX2 inline __m256i m61_addmod4(__m256i a, __m256i b) noexcept {
  return m61_cond_sub4(_mm256_add_epi64(a, b));
}

DSJOIN_AVX2 void key_powers_avx2(const std::uint64_t* keys, std::size_t n,
                                 std::uint64_t* x1, std::uint64_t* x2,
                                 std::uint64_t* x3) noexcept {
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const __m256i v1 =
        m61_fold_key4(_mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + j)));
    const __m256i v2 = m61_mulmod4(v1, v1);
    const __m256i v3 = m61_mulmod4(v2, v1);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(x1 + j), v1);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(x2 + j), v2);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(x3 + j), v3);
  }
  key_powers_scalar(keys + j, n - j, x1 + j, x2 + j, x3 + j);
}

// Coefficient broadcasts for poly_eval4, hoisted out of the per-key loops
// (u64 coefficient reads alias counter stores under TBAA, so the compiler
// cannot hoist them itself). Each multiplying coefficient is pre-split:
// b1 = b >> 32 and b1_8 = b1 << 3 turn the per-product high-half shift and
// the 2^64 == 8 scaling into loop-invariant constants (b1 < 2^29, so
// b1_8 < 2^32 stays a valid mul_epu32 operand).
struct CoeffSplit4 {
  __m256i b, b1, b1_8;
};

struct PolyCoeff4 {
  __m256i c0;
  CoeffSplit4 c1, c2, c3;
};

DSJOIN_AVX2 inline CoeffSplit4 split_coeff4(std::uint64_t c) noexcept {
  return CoeffSplit4{_mm256_set1_epi64x(static_cast<long long>(c)),
                     _mm256_set1_epi64x(static_cast<long long>(c >> 32)),
                     _mm256_set1_epi64x(static_cast<long long>((c >> 32) << 3))};
}

DSJOIN_AVX2 inline PolyCoeff4 broadcast_coeff4(const std::uint64_t* c) noexcept {
  return PolyCoeff4{_mm256_set1_epi64x(static_cast<long long>(c[0])),
                    split_coeff4(c[1]), split_coeff4(c[2]), split_coeff4(c[3])};
}

// Folded (not yet canonical) a * b mod p: congruent result < 2^61 + 4.
// Canonicalization is deferred to the polynomial sum, where one fold plus
// one conditional subtract covers all three products at once. `a1` is the
// caller-shared a >> 32 (the same split serves both hash polynomials).
DSJOIN_AVX2 inline __m256i m61_mulmod4_folded(__m256i a, __m256i a1,
                                              const CoeffSplit4& c) noexcept {
  const __m256i mask = _mm256_set1_epi64x(static_cast<long long>(kM61));
  const __m256i ll = _mm256_mul_epu32(a, c.b);      // a0*b0
  const __m256i lh = _mm256_mul_epu32(a, c.b1);     // a0*b1
  const __m256i hl = _mm256_mul_epu32(a1, c.b);     // a1*b0
  const __m256i hh8 = _mm256_mul_epu32(a1, c.b1_8); // 8*a1*b1, exact
  const __m256i m = _mm256_add_epi64(lh, hl);
  __m256i t = _mm256_add_epi64(
      hh8,
      _mm256_add_epi64(_mm256_and_si256(ll, mask), _mm256_srli_epi64(ll, 61)));
  t = _mm256_add_epi64(t, _mm256_srli_epi64(m, 29));
  t = _mm256_add_epi64(
      t, _mm256_slli_epi64(_mm256_and_si256(m, _mm256_set1_epi64x(0x1FFFFFFF)), 32));
  return _mm256_add_epi64(_mm256_and_si256(t, mask), _mm256_srli_epi64(t, 61));
}

// Power-basis evaluation with lazy reduction: three folded products plus c0
// sum to < 2^63, so a single fold and conditional subtract canonicalize the
// whole polynomial. The result is the unique residue of the same polynomial
// the scalar lazy-128 accumulation computes, so it matches bit for bit.
DSJOIN_AVX2 inline __m256i poly_eval4(const PolyCoeff4& c, __m256i v1,
                                      __m256i v2, __m256i v3, __m256i s1,
                                      __m256i s2, __m256i s3) noexcept {
  const __m256i mask = _mm256_set1_epi64x(static_cast<long long>(kM61));
  __m256i acc = _mm256_add_epi64(m61_mulmod4_folded(v3, s3, c.c3),
                                 m61_mulmod4_folded(v2, s2, c.c2));
  acc = _mm256_add_epi64(acc, m61_mulmod4_folded(v1, s1, c.c1));
  acc = _mm256_add_epi64(acc, c.c0);
  return m61_cond_sub4(
      _mm256_add_epi64(_mm256_and_si256(acc, mask), _mm256_srli_epi64(acc, 61)));
}

DSJOIN_AVX2 void poly_eval_avx2(const std::uint64_t* c, const std::uint64_t* x1,
                                const std::uint64_t* x2, const std::uint64_t* x3,
                                std::size_t n, std::uint64_t* out) noexcept {
  const PolyCoeff4 cc = broadcast_coeff4(c);
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const __m256i v1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x1 + j));
    const __m256i v2 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x2 + j));
    const __m256i v3 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x3 + j));
    const __m256i r =
        poly_eval4(cc, v1, v2, v3, _mm256_srli_epi64(v1, 32),
                   _mm256_srli_epi64(v2, 32), _mm256_srli_epi64(v3, 32));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + j), r);
  }
  poly_eval_scalar(c, x1 + j, x2 + j, x3 + j, n - j, out + j);
}

DSJOIN_AVX2 std::uint64_t parity_sum_avx2(const std::uint64_t* c,
                                          const std::uint64_t* x1,
                                          const std::uint64_t* x2,
                                          const std::uint64_t* x3,
                                          std::size_t n) noexcept {
  const PolyCoeff4 cc = broadcast_coeff4(c);
  const __m256i one = _mm256_set1_epi64x(1);
  __m256i acc = _mm256_setzero_si256();
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const __m256i v1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x1 + j));
    const __m256i v2 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x2 + j));
    const __m256i v3 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x3 + j));
    const __m256i r =
        poly_eval4(cc, v1, v2, v3, _mm256_srli_epi64(v1, 32),
                   _mm256_srli_epi64(v2, 32), _mm256_srli_epi64(v3, 32));
    acc = _mm256_add_epi64(acc, _mm256_and_si256(r, one));
  }
  alignas(32) std::uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  return lanes[0] + lanes[1] + lanes[2] + lanes[3] +
         parity_sum_scalar(c, x1 + j, x2 + j, x3 + j, n - j);
}

DSJOIN_AVX2 void fast_agms_row_avx2(const std::uint64_t* bucket_coeff,
                                    const std::uint64_t* sign_coeff,
                                    const std::uint64_t* x1,
                                    const std::uint64_t* x2,
                                    const std::uint64_t* x3, std::size_t n,
                                    std::uint64_t buckets, std::int64_t weight,
                                    std::int64_t* row) noexcept {
  if (!(buckets != 0 && std::has_single_bit(buckets))) {
    fast_agms_row_scalar(bucket_coeff, sign_coeff, x1, x2, x3, n, buckets,
                         weight, row);
    return;
  }
  const PolyCoeff4 bc = broadcast_coeff4(bucket_coeff);
  const PolyCoeff4 sc = broadcast_coeff4(sign_coeff);
  const __m256i mask = _mm256_set1_epi64x(static_cast<long long>(buckets - 1));
  const __m256i one = _mm256_set1_epi64x(1);
  const __m256i wplus = _mm256_set1_epi64x(static_cast<long long>(weight));
  const __m256i wminus = _mm256_set1_epi64x(static_cast<long long>(-weight));
  alignas(32) std::uint64_t bidx[4];
  alignas(32) std::int64_t delta[4];
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const __m256i v1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x1 + j));
    const __m256i v2 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x2 + j));
    const __m256i v3 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x3 + j));
    const __m256i s1 = _mm256_srli_epi64(v1, 32);
    const __m256i s2 = _mm256_srli_epi64(v2, 32);
    const __m256i s3 = _mm256_srli_epi64(v3, 32);
    const __m256i bh = poly_eval4(bc, v1, v2, v3, s1, s2, s3);
    const __m256i sh = poly_eval4(sc, v1, v2, v3, s1, s2, s3);
    _mm256_store_si256(reinterpret_cast<__m256i*>(bidx),
                       _mm256_and_si256(bh, mask));
    // delta = (sign hash odd) ? +weight : -weight, as a lane blend.
    const __m256i odd = _mm256_cmpeq_epi64(_mm256_and_si256(sh, one), one);
    _mm256_store_si256(reinterpret_cast<__m256i*>(delta),
                       _mm256_blendv_epi8(wminus, wplus, odd));
    row[bidx[0]] += delta[0];
    row[bidx[1]] += delta[1];
    row[bidx[2]] += delta[2];
    row[bidx[3]] += delta[3];
  }
  fast_agms_row_scalar(bucket_coeff, sign_coeff, x1 + j, x2 + j, x3 + j, n - j,
                       buckets, weight, row);
}

// Exact low 64 bits of a * mult for a constant multiplier, from the two
// 32x32->64 halves AVX2 does have.
DSJOIN_AVX2 inline __m256i mullo64_const4(__m256i a, std::uint64_t mult) noexcept {
  const __m256i lo = _mm256_set1_epi64x(static_cast<long long>(mult & 0xFFFFFFFFu));
  const __m256i hi = _mm256_set1_epi64x(static_cast<long long>(mult >> 32));
  const __m256i low = _mm256_mul_epu32(a, lo);
  const __m256i cross = _mm256_add_epi64(_mm256_mul_epu32(_mm256_srli_epi64(a, 32), lo),
                                         _mm256_mul_epu32(a, hi));
  return _mm256_add_epi64(low, _mm256_slli_epi64(cross, 32));
}

DSJOIN_AVX2 inline __m256i splitmix4(__m256i z) noexcept {
  z = mullo64_const4(_mm256_xor_si256(z, _mm256_srli_epi64(z, 30)),
                     0xbf58476d1ce4e5b9ULL);
  z = mullo64_const4(_mm256_xor_si256(z, _mm256_srli_epi64(z, 27)),
                     0x94d049bb133111ebULL);
  return _mm256_xor_si256(z, _mm256_srli_epi64(z, 31));
}

DSJOIN_AVX2 void prepare_avx2(std::uint64_t seed1, std::uint64_t seed2,
                              const std::uint64_t* keys, std::size_t n,
                              std::uint64_t* h1, std::uint64_t* h2) noexcept {
  const __m256i s1 = _mm256_set1_epi64x(static_cast<long long>(seed1));
  const __m256i s2 = _mm256_set1_epi64x(static_cast<long long>(seed2));
  const __m256i one = _mm256_set1_epi64x(1);
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const __m256i k = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + j));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(h1 + j),
                        splitmix4(_mm256_xor_si256(k, s1)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(h2 + j),
                        _mm256_or_si256(splitmix4(_mm256_xor_si256(k, s2)), one));
  }
  prepare_scalar(seed1, seed2, keys + j, n - j, h1 + j, h2 + j);
}

DSJOIN_AVX2 void indices_avx2(const std::uint64_t* h1, const std::uint64_t* h2,
                              std::size_t n, std::uint32_t probes,
                              std::uint64_t range, std::uint32_t* out) noexcept {
  if (!(range != 0 && std::has_single_bit(range))) {
    // Non-power-of-two geometry keeps the hardware divide; the scalar loop
    // is exact and this path is off the default configurations.
    indices_scalar(h1, h2, n, probes, range, out);
    return;
  }
  const __m256i mask = _mm256_set1_epi64x(static_cast<long long>(range - 1));
  const __m256i lane_pack = _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0);
  for (std::uint32_t i = 0; i < probes; ++i) {
    std::uint32_t* row = out + static_cast<std::size_t>(i) * n;
    const __m256i iv = _mm256_set1_epi64x(static_cast<long long>(i));
    std::size_t j = 0;
    for (; j + 4 <= n; j += 4) {
      const __m256i a = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(h1 + j));
      const __m256i b = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(h2 + j));
      // i < 2^32, so i*h2 mod 2^64 needs only the (b0*i, b1*i << 32) halves.
      const __m256i prod = _mm256_add_epi64(
          _mm256_mul_epu32(b, iv),
          _mm256_slli_epi64(_mm256_mul_epu32(_mm256_srli_epi64(b, 32), iv), 32));
      const __m256i idx = _mm256_and_si256(_mm256_add_epi64(a, prod), mask);
      const __m256i packed = _mm256_permutevar8x32_epi32(idx, lane_pack);
      _mm_storeu_si128(reinterpret_cast<__m128i*>(row + j),
                       _mm256_castsi256_si128(packed));
    }
    const std::uint64_t m = range - 1;
    for (; j < n; ++j) {
      row[j] = static_cast<std::uint32_t>((h1[j] + static_cast<std::uint64_t>(i) * h2[j]) & m);
    }
  }
}

DSJOIN_AVX2 void dft_accum_rotate_avx2(double* cr, double* ci, double* pr,
                                       double* pi, const double* ur,
                                       const double* ui, std::size_t n,
                                       double delta) noexcept {
  const __m256d d = _mm256_set1_pd(delta);
  std::size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    const __m256d prv = _mm256_loadu_pd(pr + k);
    const __m256d piv = _mm256_loadu_pd(pi + k);
    _mm256_storeu_pd(cr + k, _mm256_add_pd(_mm256_loadu_pd(cr + k),
                                           _mm256_mul_pd(d, prv)));
    _mm256_storeu_pd(ci + k, _mm256_add_pd(_mm256_loadu_pd(ci + k),
                                           _mm256_mul_pd(d, piv)));
    const __m256d urv = _mm256_loadu_pd(ur + k);
    const __m256d uiv = _mm256_loadu_pd(ui + k);
    _mm256_storeu_pd(pr + k, _mm256_sub_pd(_mm256_mul_pd(prv, urv),
                                           _mm256_mul_pd(piv, uiv)));
    _mm256_storeu_pd(pi + k, _mm256_add_pd(_mm256_mul_pd(prv, uiv),
                                           _mm256_mul_pd(piv, urv)));
  }
  dft_accum_rotate_scalar(cr + k, ci + k, pr + k, pi + k, ur + k, ui + k, n - k,
                          delta);
}

DSJOIN_AVX2 void dft_accum_avx2(double* cr, double* ci, const double* pr,
                                const double* pi, std::size_t n,
                                double delta) noexcept {
  const __m256d d = _mm256_set1_pd(delta);
  std::size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    _mm256_storeu_pd(cr + k, _mm256_add_pd(_mm256_loadu_pd(cr + k),
                                           _mm256_mul_pd(d, _mm256_loadu_pd(pr + k))));
    _mm256_storeu_pd(ci + k, _mm256_add_pd(_mm256_loadu_pd(ci + k),
                                           _mm256_mul_pd(d, _mm256_loadu_pd(pi + k))));
  }
  dft_accum_scalar(cr + k, ci + k, pr + k, pi + k, n - k, delta);
}

DSJOIN_AVX2 void dft_rotate_avx2(double* pr, double* pi, const double* ur,
                                 const double* ui, std::size_t n) noexcept {
  std::size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    const __m256d prv = _mm256_loadu_pd(pr + k);
    const __m256d piv = _mm256_loadu_pd(pi + k);
    const __m256d urv = _mm256_loadu_pd(ur + k);
    const __m256d uiv = _mm256_loadu_pd(ui + k);
    _mm256_storeu_pd(pr + k, _mm256_sub_pd(_mm256_mul_pd(prv, urv),
                                           _mm256_mul_pd(piv, uiv)));
    _mm256_storeu_pd(pi + k, _mm256_add_pd(_mm256_mul_pd(prv, uiv),
                                           _mm256_mul_pd(piv, urv)));
  }
  dft_rotate_scalar(pr + k, pi + k, ur + k, ui + k, n - k);
}

// Four-lane match scan: i64 key equality and double range compares produce
// a 4-bit lane mask (movemask over the double-compare domain); counting is
// a popcount, collection walks the set bits in ascending lane order.
DSJOIN_AVX2 std::uint64_t match_count_avx2(const std::int64_t* keys,
                                           const double* ts, std::size_t n,
                                           std::int64_t key, double lo,
                                           double hi) noexcept {
  const __m256i vkey = _mm256_set1_epi64x(static_cast<long long>(key));
  const __m256d vlo = _mm256_set1_pd(lo);
  const __m256d vhi = _mm256_set1_pd(hi);
  std::uint64_t count = 0;
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const __m256i k =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + j));
    const __m256d t = _mm256_loadu_pd(ts + j);
    const __m256d keq = _mm256_castsi256_pd(_mm256_cmpeq_epi64(k, vkey));
    const __m256d ge = _mm256_cmp_pd(t, vlo, _CMP_GE_OQ);
    const __m256d le = _mm256_cmp_pd(t, vhi, _CMP_LE_OQ);
    const int m = _mm256_movemask_pd(_mm256_and_pd(keq, _mm256_and_pd(ge, le)));
    count += static_cast<std::uint64_t>(__builtin_popcount(static_cast<unsigned>(m)));
  }
  return count + match_count_scalar(keys + j, ts + j, n - j, key, lo, hi);
}

DSJOIN_AVX2 std::size_t match_collect_avx2(const std::int64_t* keys,
                                           const double* ts, std::size_t n,
                                           std::int64_t key, double lo,
                                           double hi,
                                           std::uint32_t* out) noexcept {
  const __m256i vkey = _mm256_set1_epi64x(static_cast<long long>(key));
  const __m256d vlo = _mm256_set1_pd(lo);
  const __m256d vhi = _mm256_set1_pd(hi);
  std::size_t count = 0;
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const __m256i k =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + j));
    const __m256d t = _mm256_loadu_pd(ts + j);
    const __m256d keq = _mm256_castsi256_pd(_mm256_cmpeq_epi64(k, vkey));
    const __m256d ge = _mm256_cmp_pd(t, vlo, _CMP_GE_OQ);
    const __m256d le = _mm256_cmp_pd(t, vhi, _CMP_LE_OQ);
    unsigned m = static_cast<unsigned>(
        _mm256_movemask_pd(_mm256_and_pd(keq, _mm256_and_pd(ge, le))));
    while (m != 0) {
      const unsigned lane = static_cast<unsigned>(__builtin_ctz(m));
      out[count++] = static_cast<std::uint32_t>(j + lane);
      m &= m - 1;
    }
  }
  for (; j < n; ++j) {
    if (keys[j] == key && ts[j] >= lo && ts[j] <= hi) {
      out[count++] = static_cast<std::uint32_t>(j);
    }
  }
  return count;
}

// ---------------------------------------------------------------------------
// AVX-512 kernels: the same arithmetic at 8 lanes, with mask registers
// replacing the compare/and/sub canonicalization sequence.
// ---------------------------------------------------------------------------

DSJOIN_AVX512 inline __m512i m61_cond_sub8(__m512i r) noexcept {
  const __m512i p = _mm512_set1_epi64(static_cast<long long>(kM61));
  const __mmask8 ge = _mm512_cmpge_epu64_mask(r, p);
  return _mm512_mask_sub_epi64(r, ge, r, p);
}

DSJOIN_AVX512 inline __m512i m61_fold_key8(__m512i k) noexcept {
  const __m512i mask = _mm512_set1_epi64(static_cast<long long>(kM61));
  return m61_cond_sub8(
      _mm512_add_epi64(_mm512_and_si512(k, mask), _mm512_srli_epi64(k, 61)));
}

DSJOIN_AVX512 inline __m512i m61_mulmod8(__m512i a, __m512i b) noexcept {
  const __m512i mask = _mm512_set1_epi64(static_cast<long long>(kM61));
  const __m512i a1 = _mm512_srli_epi64(a, 32);
  const __m512i b1 = _mm512_srli_epi64(b, 32);
  const __m512i ll = _mm512_mul_epu32(a, b);
  const __m512i lh = _mm512_mul_epu32(a, b1);
  const __m512i hl = _mm512_mul_epu32(a1, b);
  const __m512i hh = _mm512_mul_epu32(a1, b1);
  const __m512i m = _mm512_add_epi64(lh, hl);
  __m512i t = _mm512_slli_epi64(hh, 3);
  t = _mm512_add_epi64(
      t, _mm512_add_epi64(_mm512_and_si512(ll, mask), _mm512_srli_epi64(ll, 61)));
  t = _mm512_add_epi64(t, _mm512_srli_epi64(m, 29));
  t = _mm512_add_epi64(
      t, _mm512_slli_epi64(_mm512_and_si512(m, _mm512_set1_epi64(0x1FFFFFFF)), 32));
  return m61_cond_sub8(
      _mm512_add_epi64(_mm512_and_si512(t, mask), _mm512_srli_epi64(t, 61)));
}

DSJOIN_AVX512 inline __m512i m61_addmod8(__m512i a, __m512i b) noexcept {
  return m61_cond_sub8(_mm512_add_epi64(a, b));
}

DSJOIN_AVX512 void key_powers_avx512(const std::uint64_t* keys, std::size_t n,
                                     std::uint64_t* x1, std::uint64_t* x2,
                                     std::uint64_t* x3) noexcept {
  std::size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    const __m512i v1 = m61_fold_key8(_mm512_loadu_si512(keys + j));
    const __m512i v2 = m61_mulmod8(v1, v1);
    const __m512i v3 = m61_mulmod8(v2, v1);
    _mm512_storeu_si512(x1 + j, v1);
    _mm512_storeu_si512(x2 + j, v2);
    _mm512_storeu_si512(x3 + j, v3);
  }
  key_powers_scalar(keys + j, n - j, x1 + j, x2 + j, x3 + j);
}

// Pre-split coefficient broadcasts and lazy-reduction polynomial evaluation;
// see the AVX2 CoeffSplit4/poly_eval4 comments for the bounds argument.
struct CoeffSplit8 {
  __m512i b, b1, b1_8;
};

struct PolyCoeff8 {
  __m512i c0;
  CoeffSplit8 c1, c2, c3;
};

DSJOIN_AVX512 inline CoeffSplit8 split_coeff8(std::uint64_t c) noexcept {
  return CoeffSplit8{_mm512_set1_epi64(static_cast<long long>(c)),
                     _mm512_set1_epi64(static_cast<long long>(c >> 32)),
                     _mm512_set1_epi64(static_cast<long long>((c >> 32) << 3))};
}

DSJOIN_AVX512 inline PolyCoeff8 broadcast_coeff8(const std::uint64_t* c) noexcept {
  return PolyCoeff8{_mm512_set1_epi64(static_cast<long long>(c[0])),
                    split_coeff8(c[1]), split_coeff8(c[2]), split_coeff8(c[3])};
}

DSJOIN_AVX512 inline __m512i m61_mulmod8_folded(__m512i a, __m512i a1,
                                                const CoeffSplit8& c) noexcept {
  const __m512i mask = _mm512_set1_epi64(static_cast<long long>(kM61));
  const __m512i ll = _mm512_mul_epu32(a, c.b);
  const __m512i lh = _mm512_mul_epu32(a, c.b1);
  const __m512i hl = _mm512_mul_epu32(a1, c.b);
  const __m512i hh8 = _mm512_mul_epu32(a1, c.b1_8);
  const __m512i m = _mm512_add_epi64(lh, hl);
  __m512i t = _mm512_add_epi64(
      hh8,
      _mm512_add_epi64(_mm512_and_si512(ll, mask), _mm512_srli_epi64(ll, 61)));
  t = _mm512_add_epi64(t, _mm512_srli_epi64(m, 29));
  t = _mm512_add_epi64(
      t, _mm512_slli_epi64(_mm512_and_si512(m, _mm512_set1_epi64(0x1FFFFFFF)), 32));
  return _mm512_add_epi64(_mm512_and_si512(t, mask), _mm512_srli_epi64(t, 61));
}

DSJOIN_AVX512 inline __m512i poly_eval8(const PolyCoeff8& c, __m512i v1,
                                        __m512i v2, __m512i v3, __m512i s1,
                                        __m512i s2, __m512i s3) noexcept {
  const __m512i mask = _mm512_set1_epi64(static_cast<long long>(kM61));
  __m512i acc = _mm512_add_epi64(m61_mulmod8_folded(v3, s3, c.c3),
                                 m61_mulmod8_folded(v2, s2, c.c2));
  acc = _mm512_add_epi64(acc, m61_mulmod8_folded(v1, s1, c.c1));
  acc = _mm512_add_epi64(acc, c.c0);
  return m61_cond_sub8(
      _mm512_add_epi64(_mm512_and_si512(acc, mask), _mm512_srli_epi64(acc, 61)));
}

DSJOIN_AVX512 void poly_eval_avx512(const std::uint64_t* c,
                                    const std::uint64_t* x1,
                                    const std::uint64_t* x2,
                                    const std::uint64_t* x3, std::size_t n,
                                    std::uint64_t* out) noexcept {
  const PolyCoeff8 cc = broadcast_coeff8(c);
  std::size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    const __m512i v1 = _mm512_loadu_si512(x1 + j);
    const __m512i v2 = _mm512_loadu_si512(x2 + j);
    const __m512i v3 = _mm512_loadu_si512(x3 + j);
    const __m512i r =
        poly_eval8(cc, v1, v2, v3, _mm512_srli_epi64(v1, 32),
                   _mm512_srli_epi64(v2, 32), _mm512_srli_epi64(v3, 32));
    _mm512_storeu_si512(out + j, r);
  }
  poly_eval_scalar(c, x1 + j, x2 + j, x3 + j, n - j, out + j);
}

DSJOIN_AVX512 std::uint64_t parity_sum_avx512(const std::uint64_t* c,
                                              const std::uint64_t* x1,
                                              const std::uint64_t* x2,
                                              const std::uint64_t* x3,
                                              std::size_t n) noexcept {
  const PolyCoeff8 cc = broadcast_coeff8(c);
  const __m512i one = _mm512_set1_epi64(1);
  __m512i acc = _mm512_setzero_si512();
  std::size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    const __m512i v1 = _mm512_loadu_si512(x1 + j);
    const __m512i v2 = _mm512_loadu_si512(x2 + j);
    const __m512i v3 = _mm512_loadu_si512(x3 + j);
    const __m512i r =
        poly_eval8(cc, v1, v2, v3, _mm512_srli_epi64(v1, 32),
                   _mm512_srli_epi64(v2, 32), _mm512_srli_epi64(v3, 32));
    acc = _mm512_add_epi64(acc, _mm512_and_si512(r, one));
  }
  alignas(64) std::uint64_t lanes[8];
  _mm512_store_si512(lanes, acc);
  return lanes[0] + lanes[1] + lanes[2] + lanes[3] + lanes[4] + lanes[5] +
         lanes[6] + lanes[7] +
         parity_sum_scalar(c, x1 + j, x2 + j, x3 + j, n - j);
}

DSJOIN_AVX512 void fast_agms_row_avx512(const std::uint64_t* bucket_coeff,
                                        const std::uint64_t* sign_coeff,
                                        const std::uint64_t* x1,
                                        const std::uint64_t* x2,
                                        const std::uint64_t* x3, std::size_t n,
                                        std::uint64_t buckets,
                                        std::int64_t weight,
                                        std::int64_t* row) noexcept {
  if (!(buckets != 0 && std::has_single_bit(buckets))) {
    fast_agms_row_scalar(bucket_coeff, sign_coeff, x1, x2, x3, n, buckets,
                         weight, row);
    return;
  }
  const PolyCoeff8 bc = broadcast_coeff8(bucket_coeff);
  const PolyCoeff8 sc = broadcast_coeff8(sign_coeff);
  const __m512i mask = _mm512_set1_epi64(static_cast<long long>(buckets - 1));
  const __m512i one = _mm512_set1_epi64(1);
  const __m512i wplus = _mm512_set1_epi64(static_cast<long long>(weight));
  const __m512i wminus = _mm512_set1_epi64(static_cast<long long>(-weight));
  alignas(64) std::uint64_t bidx[8];
  alignas(64) std::int64_t delta[8];
  std::size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    const __m512i v1 = _mm512_loadu_si512(x1 + j);
    const __m512i v2 = _mm512_loadu_si512(x2 + j);
    const __m512i v3 = _mm512_loadu_si512(x3 + j);
    const __m512i s1 = _mm512_srli_epi64(v1, 32);
    const __m512i s2 = _mm512_srli_epi64(v2, 32);
    const __m512i s3 = _mm512_srli_epi64(v3, 32);
    const __m512i bh = poly_eval8(bc, v1, v2, v3, s1, s2, s3);
    const __m512i sh = poly_eval8(sc, v1, v2, v3, s1, s2, s3);
    _mm512_store_si512(bidx, _mm512_and_si512(bh, mask));
    const __mmask8 odd = _mm512_test_epi64_mask(sh, one);
    _mm512_store_si512(delta, _mm512_mask_blend_epi64(odd, wminus, wplus));
    row[bidx[0]] += delta[0];
    row[bidx[1]] += delta[1];
    row[bidx[2]] += delta[2];
    row[bidx[3]] += delta[3];
    row[bidx[4]] += delta[4];
    row[bidx[5]] += delta[5];
    row[bidx[6]] += delta[6];
    row[bidx[7]] += delta[7];
  }
  fast_agms_row_scalar(bucket_coeff, sign_coeff, x1 + j, x2 + j, x3 + j, n - j,
                       buckets, weight, row);
}

DSJOIN_AVX512 inline __m512i splitmix8(__m512i z) noexcept {
  z = _mm512_mullo_epi64(_mm512_xor_si512(z, _mm512_srli_epi64(z, 30)),
                         _mm512_set1_epi64(static_cast<long long>(0xbf58476d1ce4e5b9ULL)));
  z = _mm512_mullo_epi64(_mm512_xor_si512(z, _mm512_srli_epi64(z, 27)),
                         _mm512_set1_epi64(static_cast<long long>(0x94d049bb133111ebULL)));
  return _mm512_xor_si512(z, _mm512_srli_epi64(z, 31));
}

DSJOIN_AVX512 void prepare_avx512(std::uint64_t seed1, std::uint64_t seed2,
                                  const std::uint64_t* keys, std::size_t n,
                                  std::uint64_t* h1, std::uint64_t* h2) noexcept {
  const __m512i s1 = _mm512_set1_epi64(static_cast<long long>(seed1));
  const __m512i s2 = _mm512_set1_epi64(static_cast<long long>(seed2));
  const __m512i one = _mm512_set1_epi64(1);
  std::size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    const __m512i k = _mm512_loadu_si512(keys + j);
    _mm512_storeu_si512(h1 + j, splitmix8(_mm512_xor_si512(k, s1)));
    _mm512_storeu_si512(h2 + j,
                        _mm512_or_si512(splitmix8(_mm512_xor_si512(k, s2)), one));
  }
  prepare_scalar(seed1, seed2, keys + j, n - j, h1 + j, h2 + j);
}

DSJOIN_AVX512 void indices_avx512(const std::uint64_t* h1, const std::uint64_t* h2,
                                  std::size_t n, std::uint32_t probes,
                                  std::uint64_t range, std::uint32_t* out) noexcept {
  if (!(range != 0 && std::has_single_bit(range))) {
    indices_scalar(h1, h2, n, probes, range, out);
    return;
  }
  const __m512i mask = _mm512_set1_epi64(static_cast<long long>(range - 1));
  for (std::uint32_t i = 0; i < probes; ++i) {
    std::uint32_t* row = out + static_cast<std::size_t>(i) * n;
    const __m512i iv = _mm512_set1_epi64(static_cast<long long>(i));
    std::size_t j = 0;
    for (; j + 8 <= n; j += 8) {
      const __m512i a = _mm512_loadu_si512(h1 + j);
      const __m512i b = _mm512_loadu_si512(h2 + j);
      const __m512i idx = _mm512_and_si512(
          _mm512_add_epi64(a, _mm512_mullo_epi64(b, iv)), mask);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(row + j),
                          _mm512_cvtepi64_epi32(idx));
    }
    const std::uint64_t m = range - 1;
    for (; j < n; ++j) {
      row[j] = static_cast<std::uint32_t>((h1[j] + static_cast<std::uint64_t>(i) * h2[j]) & m);
    }
  }
}

DSJOIN_AVX512 void dft_accum_rotate_avx512(double* cr, double* ci, double* pr,
                                           double* pi, const double* ur,
                                           const double* ui, std::size_t n,
                                           double delta) noexcept {
  const __m512d d = _mm512_set1_pd(delta);
  std::size_t k = 0;
  for (; k + 8 <= n; k += 8) {
    const __m512d prv = _mm512_loadu_pd(pr + k);
    const __m512d piv = _mm512_loadu_pd(pi + k);
    _mm512_storeu_pd(cr + k, _mm512_add_pd(_mm512_loadu_pd(cr + k),
                                           _mm512_mul_pd(d, prv)));
    _mm512_storeu_pd(ci + k, _mm512_add_pd(_mm512_loadu_pd(ci + k),
                                           _mm512_mul_pd(d, piv)));
    const __m512d urv = _mm512_loadu_pd(ur + k);
    const __m512d uiv = _mm512_loadu_pd(ui + k);
    _mm512_storeu_pd(pr + k, _mm512_sub_pd(_mm512_mul_pd(prv, urv),
                                           _mm512_mul_pd(piv, uiv)));
    _mm512_storeu_pd(pi + k, _mm512_add_pd(_mm512_mul_pd(prv, uiv),
                                           _mm512_mul_pd(piv, urv)));
  }
  dft_accum_rotate_scalar(cr + k, ci + k, pr + k, pi + k, ur + k, ui + k, n - k,
                          delta);
}

DSJOIN_AVX512 void dft_accum_avx512(double* cr, double* ci, const double* pr,
                                    const double* pi, std::size_t n,
                                    double delta) noexcept {
  const __m512d d = _mm512_set1_pd(delta);
  std::size_t k = 0;
  for (; k + 8 <= n; k += 8) {
    _mm512_storeu_pd(cr + k, _mm512_add_pd(_mm512_loadu_pd(cr + k),
                                           _mm512_mul_pd(d, _mm512_loadu_pd(pr + k))));
    _mm512_storeu_pd(ci + k, _mm512_add_pd(_mm512_loadu_pd(ci + k),
                                           _mm512_mul_pd(d, _mm512_loadu_pd(pi + k))));
  }
  dft_accum_scalar(cr + k, ci + k, pr + k, pi + k, n - k, delta);
}

DSJOIN_AVX512 void dft_rotate_avx512(double* pr, double* pi, const double* ur,
                                     const double* ui, std::size_t n) noexcept {
  std::size_t k = 0;
  for (; k + 8 <= n; k += 8) {
    const __m512d prv = _mm512_loadu_pd(pr + k);
    const __m512d piv = _mm512_loadu_pd(pi + k);
    const __m512d urv = _mm512_loadu_pd(ur + k);
    const __m512d uiv = _mm512_loadu_pd(ui + k);
    _mm512_storeu_pd(pr + k, _mm512_sub_pd(_mm512_mul_pd(prv, urv),
                                           _mm512_mul_pd(piv, uiv)));
    _mm512_storeu_pd(pi + k, _mm512_add_pd(_mm512_mul_pd(prv, uiv),
                                           _mm512_mul_pd(piv, urv)));
  }
  dft_rotate_scalar(pr + k, pi + k, ur + k, ui + k, n - k);
}

// Eight-lane match scan: compare results land directly in __mmask8
// registers (no movemask detour); counting is a popcount over the mask,
// collection walks the set bits in ascending lane order.
DSJOIN_AVX512 std::uint64_t match_count_avx512(const std::int64_t* keys,
                                               const double* ts, std::size_t n,
                                               std::int64_t key, double lo,
                                               double hi) noexcept {
  const __m512i vkey = _mm512_set1_epi64(static_cast<long long>(key));
  const __m512d vlo = _mm512_set1_pd(lo);
  const __m512d vhi = _mm512_set1_pd(hi);
  std::uint64_t count = 0;
  std::size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    const __m512i k = _mm512_loadu_si512(keys + j);
    const __m512d t = _mm512_loadu_pd(ts + j);
    const __mmask8 keq = _mm512_cmpeq_epi64_mask(k, vkey);
    const __mmask8 ge = _mm512_cmp_pd_mask(t, vlo, _CMP_GE_OQ);
    const __mmask8 le = _mm512_cmp_pd_mask(t, vhi, _CMP_LE_OQ);
    const unsigned m = static_cast<unsigned>(keq & ge & le);
    count += static_cast<std::uint64_t>(__builtin_popcount(m));
  }
  return count + match_count_scalar(keys + j, ts + j, n - j, key, lo, hi);
}

DSJOIN_AVX512 std::size_t match_collect_avx512(const std::int64_t* keys,
                                               const double* ts, std::size_t n,
                                               std::int64_t key, double lo,
                                               double hi,
                                               std::uint32_t* out) noexcept {
  const __m512i vkey = _mm512_set1_epi64(static_cast<long long>(key));
  const __m512d vlo = _mm512_set1_pd(lo);
  const __m512d vhi = _mm512_set1_pd(hi);
  std::size_t count = 0;
  std::size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    const __m512i k = _mm512_loadu_si512(keys + j);
    const __m512d t = _mm512_loadu_pd(ts + j);
    const __mmask8 keq = _mm512_cmpeq_epi64_mask(k, vkey);
    const __mmask8 ge = _mm512_cmp_pd_mask(t, vlo, _CMP_GE_OQ);
    const __mmask8 le = _mm512_cmp_pd_mask(t, vhi, _CMP_LE_OQ);
    unsigned m = static_cast<unsigned>(keq & ge & le);
    while (m != 0) {
      const unsigned lane = static_cast<unsigned>(__builtin_ctz(m));
      out[count++] = static_cast<std::uint32_t>(j + lane);
      m &= m - 1;
    }
  }
  for (; j < n; ++j) {
    if (keys[j] == key && ts[j] >= lo && ts[j] <= hi) {
      out[count++] = static_cast<std::uint32_t>(j);
    }
  }
  return count;
}

#endif  // DSJOIN_SIMD_X86

// ---------------------------------------------------------------------------
// NEON kernels (DFT only; the integer kernels fall back to scalar there).
// vmulq/vaddq/vsubq are per-lane IEEE operations with no contraction.
// ---------------------------------------------------------------------------
#if DSJOIN_SIMD_NEON

void dft_accum_rotate_neon(double* cr, double* ci, double* pr, double* pi,
                           const double* ur, const double* ui, std::size_t n,
                           double delta) noexcept {
  const float64x2_t d = vdupq_n_f64(delta);
  std::size_t k = 0;
  for (; k + 2 <= n; k += 2) {
    const float64x2_t prv = vld1q_f64(pr + k);
    const float64x2_t piv = vld1q_f64(pi + k);
    vst1q_f64(cr + k, vaddq_f64(vld1q_f64(cr + k), vmulq_f64(d, prv)));
    vst1q_f64(ci + k, vaddq_f64(vld1q_f64(ci + k), vmulq_f64(d, piv)));
    const float64x2_t urv = vld1q_f64(ur + k);
    const float64x2_t uiv = vld1q_f64(ui + k);
    vst1q_f64(pr + k, vsubq_f64(vmulq_f64(prv, urv), vmulq_f64(piv, uiv)));
    vst1q_f64(pi + k, vaddq_f64(vmulq_f64(prv, uiv), vmulq_f64(piv, urv)));
  }
  dft_accum_rotate_scalar(cr + k, ci + k, pr + k, pi + k, ur + k, ui + k, n - k,
                          delta);
}

void dft_accum_neon(double* cr, double* ci, const double* pr, const double* pi,
                    std::size_t n, double delta) noexcept {
  const float64x2_t d = vdupq_n_f64(delta);
  std::size_t k = 0;
  for (; k + 2 <= n; k += 2) {
    vst1q_f64(cr + k, vaddq_f64(vld1q_f64(cr + k), vmulq_f64(d, vld1q_f64(pr + k))));
    vst1q_f64(ci + k, vaddq_f64(vld1q_f64(ci + k), vmulq_f64(d, vld1q_f64(pi + k))));
  }
  dft_accum_scalar(cr + k, ci + k, pr + k, pi + k, n - k, delta);
}

void dft_rotate_neon(double* pr, double* pi, const double* ur, const double* ui,
                     std::size_t n) noexcept {
  std::size_t k = 0;
  for (; k + 2 <= n; k += 2) {
    const float64x2_t prv = vld1q_f64(pr + k);
    const float64x2_t piv = vld1q_f64(pi + k);
    const float64x2_t urv = vld1q_f64(ur + k);
    const float64x2_t uiv = vld1q_f64(ui + k);
    vst1q_f64(pr + k, vsubq_f64(vmulq_f64(prv, urv), vmulq_f64(piv, uiv)));
    vst1q_f64(pi + k, vaddq_f64(vmulq_f64(prv, uiv), vmulq_f64(piv, urv)));
  }
  dft_rotate_scalar(pr + k, pi + k, ur + k, ui + k, n - k);
}

// Two-lane match scan. NEON has no movemask, so the combined predicate is
// read back per lane; at two lanes that is still cheaper than the branchy
// scalar loop on mostly-miss partitions.
std::uint64_t match_count_neon(const std::int64_t* keys, const double* ts,
                               std::size_t n, std::int64_t key, double lo,
                               double hi) noexcept {
  const int64x2_t vkey = vdupq_n_s64(key);
  const float64x2_t vlo = vdupq_n_f64(lo);
  const float64x2_t vhi = vdupq_n_f64(hi);
  std::uint64_t count = 0;
  std::size_t j = 0;
  for (; j + 2 <= n; j += 2) {
    const uint64x2_t keq = vceqq_s64(vld1q_s64(keys + j), vkey);
    const float64x2_t t = vld1q_f64(ts + j);
    const uint64x2_t ge = vcgeq_f64(t, vlo);
    const uint64x2_t le = vcleq_f64(t, vhi);
    const uint64x2_t m = vandq_u64(keq, vandq_u64(ge, le));
    count += vgetq_lane_u64(m, 0) & 1u;
    count += vgetq_lane_u64(m, 1) & 1u;
  }
  return count + match_count_scalar(keys + j, ts + j, n - j, key, lo, hi);
}

std::size_t match_collect_neon(const std::int64_t* keys, const double* ts,
                               std::size_t n, std::int64_t key, double lo,
                               double hi, std::uint32_t* out) noexcept {
  const int64x2_t vkey = vdupq_n_s64(key);
  const float64x2_t vlo = vdupq_n_f64(lo);
  const float64x2_t vhi = vdupq_n_f64(hi);
  std::size_t count = 0;
  std::size_t j = 0;
  for (; j + 2 <= n; j += 2) {
    const uint64x2_t keq = vceqq_s64(vld1q_s64(keys + j), vkey);
    const float64x2_t t = vld1q_f64(ts + j);
    const uint64x2_t ge = vcgeq_f64(t, vlo);
    const uint64x2_t le = vcleq_f64(t, vhi);
    const uint64x2_t m = vandq_u64(keq, vandq_u64(ge, le));
    if (vgetq_lane_u64(m, 0) != 0) out[count++] = static_cast<std::uint32_t>(j);
    if (vgetq_lane_u64(m, 1) != 0) {
      out[count++] = static_cast<std::uint32_t>(j + 1);
    }
  }
  for (; j < n; ++j) {
    if (keys[j] == key && ts[j] >= lo && ts[j] <= hi) {
      out[count++] = static_cast<std::uint32_t>(j);
    }
  }
  return count;
}

#endif  // DSJOIN_SIMD_NEON

// ---------------------------------------------------------------------------
// Dispatch state.
// ---------------------------------------------------------------------------

Level env_level() noexcept {
  static const Level level = [] {
    const Level best = detected_level();
    const char* env = std::getenv("DSJOIN_SIMD");
    if (env == nullptr) return best;
    const std::string_view name(env);
    Level wanted = best;
    if (name == "scalar") wanted = Level::kScalar;
    else if (name == "neon") wanted = Level::kNeon;
    else if (name == "avx2") wanted = Level::kAvx2;
    else if (name == "avx512") wanted = Level::kAvx512;
    return wanted < best ? wanted : best;
  }();
  return level;
}

// 0xFF = no override; otherwise the forced Level value.
std::atomic<std::uint8_t> g_forced{0xFF};

}  // namespace

const char* level_name(Level level) noexcept {
  switch (level) {
    case Level::kScalar: return "scalar";
    case Level::kNeon: return "neon";
    case Level::kAvx2: return "avx2";
    case Level::kAvx512: return "avx512";
  }
  return "unknown";
}

Level detected_level() noexcept {
#if DSJOIN_SIMD_X86
  static const Level level = [] {
    if (__builtin_cpu_supports("avx512f") && __builtin_cpu_supports("avx512dq")) {
      return Level::kAvx512;
    }
    if (__builtin_cpu_supports("avx2")) return Level::kAvx2;
    return Level::kScalar;
  }();
  return level;
#elif DSJOIN_SIMD_NEON
  return Level::kNeon;  // AArch64 mandates Advanced SIMD
#else
  return Level::kScalar;
#endif
}

Level active_level() noexcept {
  const std::uint8_t forced = g_forced.load(std::memory_order_relaxed);
  if (forced != 0xFF) return static_cast<Level>(forced);
  return env_level();
}

void force_level(Level level) noexcept {
  const Level best = detected_level();
  g_forced.store(static_cast<std::uint8_t>(level < best ? level : best),
                 std::memory_order_relaxed);
}

void reset_level() noexcept {
  g_forced.store(0xFF, std::memory_order_relaxed);
}

// Each kernel dispatches on the active level; levels without an
// implementation for a kernel (or the wrong architecture) fall through to
// the scalar reference, which is always exact.

void dft_accum_rotate(double* cr, double* ci, double* pr, double* pi,
                      const double* ur, const double* ui, std::size_t n,
                      double delta) noexcept {
  switch (active_level()) {
#if DSJOIN_SIMD_X86
    case Level::kAvx512:
      dft_accum_rotate_avx512(cr, ci, pr, pi, ur, ui, n, delta);
      return;
    case Level::kAvx2:
      dft_accum_rotate_avx2(cr, ci, pr, pi, ur, ui, n, delta);
      return;
#endif
#if DSJOIN_SIMD_NEON
    case Level::kNeon:
      dft_accum_rotate_neon(cr, ci, pr, pi, ur, ui, n, delta);
      return;
#endif
    default:
      break;
  }
  dft_accum_rotate_scalar(cr, ci, pr, pi, ur, ui, n, delta);
}

void dft_accum(double* cr, double* ci, const double* pr, const double* pi,
               std::size_t n, double delta) noexcept {
  switch (active_level()) {
#if DSJOIN_SIMD_X86
    case Level::kAvx512: dft_accum_avx512(cr, ci, pr, pi, n, delta); return;
    case Level::kAvx2: dft_accum_avx2(cr, ci, pr, pi, n, delta); return;
#endif
#if DSJOIN_SIMD_NEON
    case Level::kNeon: dft_accum_neon(cr, ci, pr, pi, n, delta); return;
#endif
    default: break;
  }
  dft_accum_scalar(cr, ci, pr, pi, n, delta);
}

void dft_rotate(double* pr, double* pi, const double* ur, const double* ui,
                std::size_t n) noexcept {
  switch (active_level()) {
#if DSJOIN_SIMD_X86
    case Level::kAvx512: dft_rotate_avx512(pr, pi, ur, ui, n); return;
    case Level::kAvx2: dft_rotate_avx2(pr, pi, ur, ui, n); return;
#endif
#if DSJOIN_SIMD_NEON
    case Level::kNeon: dft_rotate_neon(pr, pi, ur, ui, n); return;
#endif
    default: break;
  }
  dft_rotate_scalar(pr, pi, ur, ui, n);
}

void m61_key_powers(const std::uint64_t* keys, std::size_t n, std::uint64_t* x1,
                    std::uint64_t* x2, std::uint64_t* x3) noexcept {
  switch (active_level()) {
#if DSJOIN_SIMD_X86
    case Level::kAvx512: key_powers_avx512(keys, n, x1, x2, x3); return;
    case Level::kAvx2: key_powers_avx2(keys, n, x1, x2, x3); return;
#endif
    default: break;
  }
  key_powers_scalar(keys, n, x1, x2, x3);
}

void m61_poly_eval(const std::uint64_t* coeff, const std::uint64_t* x1,
                   const std::uint64_t* x2, const std::uint64_t* x3,
                   std::size_t n, std::uint64_t* out) noexcept {
  switch (active_level()) {
#if DSJOIN_SIMD_X86
    case Level::kAvx512: poly_eval_avx512(coeff, x1, x2, x3, n, out); return;
    case Level::kAvx2: poly_eval_avx2(coeff, x1, x2, x3, n, out); return;
#endif
    default: break;
  }
  poly_eval_scalar(coeff, x1, x2, x3, n, out);
}

std::uint64_t m61_poly_parity_sum(const std::uint64_t* coeff,
                                  const std::uint64_t* x1,
                                  const std::uint64_t* x2,
                                  const std::uint64_t* x3,
                                  std::size_t n) noexcept {
  switch (active_level()) {
#if DSJOIN_SIMD_X86
    case Level::kAvx512: return parity_sum_avx512(coeff, x1, x2, x3, n);
    case Level::kAvx2: return parity_sum_avx2(coeff, x1, x2, x3, n);
#endif
    default: break;
  }
  return parity_sum_scalar(coeff, x1, x2, x3, n);
}

void fast_agms_update_row(const std::uint64_t* bucket_coeff,
                          const std::uint64_t* sign_coeff,
                          const std::uint64_t* x1, const std::uint64_t* x2,
                          const std::uint64_t* x3, std::size_t n,
                          std::uint64_t buckets, std::int64_t weight,
                          std::int64_t* row) noexcept {
  switch (active_level()) {
#if DSJOIN_SIMD_X86
    case Level::kAvx512:
      fast_agms_row_avx512(bucket_coeff, sign_coeff, x1, x2, x3, n, buckets,
                           weight, row);
      return;
    case Level::kAvx2:
      fast_agms_row_avx2(bucket_coeff, sign_coeff, x1, x2, x3, n, buckets,
                         weight, row);
      return;
#endif
    default: break;
  }
  fast_agms_row_scalar(bucket_coeff, sign_coeff, x1, x2, x3, n, buckets, weight,
                       row);
}

void double_hash_prepare(std::uint64_t seed1, std::uint64_t seed2,
                         const std::uint64_t* keys, std::size_t n,
                         std::uint64_t* h1, std::uint64_t* h2) noexcept {
  switch (active_level()) {
#if DSJOIN_SIMD_X86
    case Level::kAvx512: prepare_avx512(seed1, seed2, keys, n, h1, h2); return;
    case Level::kAvx2: prepare_avx2(seed1, seed2, keys, n, h1, h2); return;
#endif
    default: break;
  }
  prepare_scalar(seed1, seed2, keys, n, h1, h2);
}

bool double_hash_indices(const std::uint64_t* h1, const std::uint64_t* h2,
                         std::size_t n, std::uint32_t probes,
                         std::uint64_t range, std::uint32_t* out) noexcept {
  if (range > (std::uint64_t{1} << 32)) return false;
  switch (active_level()) {
#if DSJOIN_SIMD_X86
    case Level::kAvx512: indices_avx512(h1, h2, n, probes, range, out); return true;
    case Level::kAvx2: indices_avx2(h1, h2, n, probes, range, out); return true;
#endif
    default: break;
  }
  indices_scalar(h1, h2, n, probes, range, out);
  return true;
}

std::uint64_t match_count_scan(const std::int64_t* keys, const double* ts,
                               std::size_t n, std::int64_t key, double lo,
                               double hi) noexcept {
  switch (active_level()) {
#if DSJOIN_SIMD_X86
    case Level::kAvx512: return match_count_avx512(keys, ts, n, key, lo, hi);
    case Level::kAvx2: return match_count_avx2(keys, ts, n, key, lo, hi);
#endif
#if DSJOIN_SIMD_NEON
    case Level::kNeon: return match_count_neon(keys, ts, n, key, lo, hi);
#endif
    default: break;
  }
  return match_count_scalar(keys, ts, n, key, lo, hi);
}

std::size_t match_collect_scan(const std::int64_t* keys, const double* ts,
                               std::size_t n, std::int64_t key, double lo,
                               double hi, std::uint32_t* out) noexcept {
  switch (active_level()) {
#if DSJOIN_SIMD_X86
    case Level::kAvx512:
      return match_collect_avx512(keys, ts, n, key, lo, hi, out);
    case Level::kAvx2: return match_collect_avx2(keys, ts, n, key, lo, hi, out);
#endif
#if DSJOIN_SIMD_NEON
    case Level::kNeon: return match_collect_neon(keys, ts, n, key, lo, hi, out);
#endif
    default: break;
  }
  return match_collect_scalar(keys, ts, n, key, lo, hi, out);
}

}  // namespace dsjoin::common::simd
