#include "dsjoin/common/cli.hpp"

#include <cassert>
#include <charconv>
#include <cstdio>
#include "dsjoin/common/strformat.hpp"

namespace dsjoin::common {

CliFlags& CliFlags::add_int(std::string name, std::int64_t default_value,
                            std::string help) {
  flags_[std::move(name)] =
      Flag{Kind::kInt, std::move(help), std::to_string(default_value)};
  return *this;
}

CliFlags& CliFlags::add_double(std::string name, double default_value,
                               std::string help) {
  flags_[std::move(name)] =
      Flag{Kind::kDouble, std::move(help), str_format("%.17g", default_value)};
  return *this;
}

CliFlags& CliFlags::add_string(std::string name, std::string default_value,
                               std::string help) {
  flags_[std::move(name)] =
      Flag{Kind::kString, std::move(help), std::move(default_value)};
  return *this;
}

CliFlags& CliFlags::add_bool(std::string name, bool default_value, std::string help) {
  flags_[std::move(name)] =
      Flag{Kind::kBool, std::move(help), default_value ? "true" : "false"};
  return *this;
}

Status CliFlags::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage(argv[0]).c_str(), stdout);
      return Status(ErrorCode::kFailedPrecondition, "help requested");
    }
    if (!arg.starts_with("--")) {
      return Status(ErrorCode::kInvalidArgument,
                    str_format("unexpected positional argument '%.*s'", static_cast<int>(arg.size()), arg.data()));
    }
    arg.remove_prefix(2);
    std::string name;
    std::string value;
    bool have_value = false;
    if (const auto eq = arg.find('='); eq != std::string_view::npos) {
      name = std::string(arg.substr(0, eq));
      value = std::string(arg.substr(eq + 1));
      have_value = true;
    } else {
      name = std::string(arg);
    }
    auto it = flags_.find(name);
    if (it == flags_.end()) {
      return Status(ErrorCode::kInvalidArgument,
                    str_format("unknown flag '--%s'", name.c_str()));
    }
    Flag& flag = it->second;
    if (!have_value) {
      if (flag.kind == Kind::kBool) {
        value = "true";
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        return Status(ErrorCode::kInvalidArgument,
                      str_format("flag '--%s' expects a value", name.c_str()));
      }
    }
    // Validate numeric flags eagerly so errors point at the bad argument.
    if (flag.kind == Kind::kInt) {
      std::int64_t parsed{};
      const auto [ptr, ec] =
          std::from_chars(value.data(), value.data() + value.size(), parsed);
      if (ec != std::errc{} || ptr != value.data() + value.size()) {
        return Status(ErrorCode::kInvalidArgument,
                      str_format("flag '--%s' expects an integer, got '%s'", name.c_str(), value.c_str()));
      }
    } else if (flag.kind == Kind::kDouble) {
      char* end = nullptr;
      (void)std::strtod(value.c_str(), &end);
      if (end != value.c_str() + value.size() || value.empty()) {
        return Status(ErrorCode::kInvalidArgument,
                      str_format("flag '--%s' expects a number, got '%s'", name.c_str(), value.c_str()));
      }
    } else if (flag.kind == Kind::kBool) {
      if (value != "true" && value != "false" && value != "1" && value != "0") {
        return Status(ErrorCode::kInvalidArgument,
                      str_format("flag '--%s' expects true/false, got '%s'", name.c_str(), value.c_str()));
      }
    }
    flag.value = std::move(value);
  }
  return Status::ok();
}

const CliFlags::Flag* CliFlags::find(std::string_view name, Kind kind) const {
  const auto it = flags_.find(name);
  assert(it != flags_.end() && "flag not declared");
  assert(it->second.kind == kind && "flag accessed with wrong type");
  (void)kind;
  return &it->second;
}

std::int64_t CliFlags::get_int(std::string_view name) const {
  const Flag* f = find(name, Kind::kInt);
  return std::stoll(f->value);
}

double CliFlags::get_double(std::string_view name) const {
  const Flag* f = find(name, Kind::kDouble);
  return std::stod(f->value);
}

const std::string& CliFlags::get_string(std::string_view name) const {
  return find(name, Kind::kString)->value;
}

bool CliFlags::get_bool(std::string_view name) const {
  const Flag* f = find(name, Kind::kBool);
  return f->value == "true" || f->value == "1";
}

std::string CliFlags::usage(std::string_view program) const {
  std::string out = str_format("%s\n\nUsage: %.*s [flags]\n\nFlags:\n",
                               description_.c_str(),
                               static_cast<int>(program.size()), program.data());
  for (const auto& [name, flag] : flags_) {
    out += str_format("  --%-24s %s (default: %s)\n", name.c_str(),
                      flag.help.c_str(), flag.value.c_str());
  }
  return out;
}

}  // namespace dsjoin::common
