#include "dsjoin/common/rng.hpp"

#include <cmath>

namespace dsjoin::common {

double Xoshiro256::next_gaussian() noexcept {
  // Marsaglia polar method; rejection loop terminates with probability 1.
  for (;;) {
    const double u = 2.0 * next_double() - 1.0;
    const double v = 2.0 * next_double() - 1.0;
    const double s = u * u + v * v;
    if (s > 0.0 && s < 1.0) {
      return u * std::sqrt(-2.0 * std::log(s) / s);
    }
  }
}

double Xoshiro256::next_exponential(double rate) noexcept {
  // Inverse-CDF; 1 - U avoids log(0).
  return -std::log(1.0 - next_double()) / rate;
}

}  // namespace dsjoin::common
