#include "dsjoin/common/thread_pool.hpp"

namespace dsjoin::common {

ThreadPool::ThreadPool(std::size_t workers) {
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::worker_loop() {
  std::unique_lock lock(mutex_);
  std::uint64_t seen_generation = 0;
  for (;;) {
    work_cv_.wait(lock, [&] { return stop_ || generation_ != seen_generation; });
    if (stop_) return;
    seen_generation = generation_;
    while (batch_ != nullptr && next_task_ < batch_->size()) {
      const std::size_t index = next_task_++;
      lock.unlock();
      std::exception_ptr error;
      try {
        (*batch_)[index]();
      } catch (...) {
        error = std::current_exception();
      }
      lock.lock();
      if (error) errors_[index] = std::move(error);
      if (--unfinished_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::run_batch(std::vector<std::function<void()>>& tasks) {
  if (tasks.empty()) return;
  std::unique_lock lock(mutex_);
  batch_ = &tasks;
  errors_.assign(tasks.size(), nullptr);
  next_task_ = 0;
  unfinished_ = tasks.size();
  ++generation_;
  work_cv_.notify_all();

  // The caller drains tasks alongside the workers (a one-task batch never
  // pays a context switch), then waits for the stragglers.
  while (next_task_ < tasks.size()) {
    const std::size_t index = next_task_++;
    lock.unlock();
    std::exception_ptr error;
    try {
      tasks[index]();
    } catch (...) {
      error = std::current_exception();
    }
    lock.lock();
    if (error) errors_[index] = std::move(error);
    --unfinished_;
  }
  done_cv_.wait(lock, [&] { return unfinished_ == 0; });
  batch_ = nullptr;

  for (auto& error : errors_) {
    if (error) {
      auto first = std::move(error);
      errors_.clear();
      std::rethrow_exception(first);
    }
  }
}

}  // namespace dsjoin::common
