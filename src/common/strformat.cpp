#include "dsjoin/common/strformat.hpp"

#include <cstdarg>
#include <cstdio>

namespace dsjoin::common {

std::string str_format(const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  std::va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  if (needed <= 0) {
    va_end(args_copy);
    return {};
  }
  std::string out(static_cast<std::size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

}  // namespace dsjoin::common
