#include "dsjoin/common/status.hpp"

namespace dsjoin::common {

std::string_view to_string(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kOk: return "OK";
    case ErrorCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case ErrorCode::kOutOfRange: return "OUT_OF_RANGE";
    case ErrorCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case ErrorCode::kNotFound: return "NOT_FOUND";
    case ErrorCode::kAlreadyExists: return "ALREADY_EXISTS";
    case ErrorCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case ErrorCode::kUnavailable: return "UNAVAILABLE";
    case ErrorCode::kDataLoss: return "DATA_LOSS";
    case ErrorCode::kInternal: return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::to_string() const {
  if (is_ok()) return "OK";
  std::string out{dsjoin::common::to_string(code_)};
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace dsjoin::common
