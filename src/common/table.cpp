#include "dsjoin/common/table.hpp"

#include <algorithm>
#include <cassert>

namespace dsjoin::common {

TablePrinter::TablePrinter(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {}

void TablePrinter::add_row(std::vector<std::string> cells) {
  assert(cells.size() == columns_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::print(std::FILE* out) const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) widths[c] = columns_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::fprintf(out, "\n=== %s ===\n", title_.c_str());
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      std::fprintf(out, "%s%-*s", c == 0 ? "  " : "  | ",
                   static_cast<int>(widths[c]), row[c].c_str());
    }
    std::fputc('\n', out);
  };
  print_row(columns_);
  std::size_t total = columns_.size() * 4;
  for (std::size_t w : widths) total += w;
  std::fprintf(out, "  %s\n", std::string(total, '-').c_str());
  for (const auto& row : rows_) print_row(row);
}

void TablePrinter::print_csv(std::FILE* out) const {
  auto escape = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string q = "\"";
    for (char ch : s) {
      if (ch == '"') q += '"';
      q += ch;
    }
    q += '"';
    return q;
  };
  std::fprintf(out, "# csv %s\n", title_.c_str());
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      std::fprintf(out, "%s%s", c == 0 ? "" : ",", escape(row[c]).c_str());
    }
    std::fputc('\n', out);
  };
  print_row(columns_);
  for (const auto& row : rows_) print_row(row);
}

}  // namespace dsjoin::common
