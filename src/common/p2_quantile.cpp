#include "dsjoin/common/p2_quantile.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace dsjoin::common {

P2Quantile::P2Quantile(double q) : q_(q) {
  assert(q > 0.0 && q < 1.0);
  increments_ = {0.0, q_ / 2.0, q_, (1.0 + q_) / 2.0, 1.0};
}

void P2Quantile::initialize() noexcept {
  std::sort(heights_.begin(), heights_.end());
  positions_ = {1, 2, 3, 4, 5};
  desired_ = {1.0, 1.0 + 2.0 * q_, 1.0 + 4.0 * q_, 3.0 + 2.0 * q_, 5.0};
}

double P2Quantile::parabolic(double d, double q_prev, double q_cur,
                             double q_next, double n_prev, double n_cur,
                             double n_next) noexcept {
  return q_cur + d / (n_next - n_prev) *
                     ((n_cur - n_prev + d) * (q_next - q_cur) / (n_next - n_cur) +
                      (n_next - n_cur - d) * (q_cur - q_prev) / (n_cur - n_prev));
}

void P2Quantile::add(double x) noexcept {
  if (count_ < 5) {
    heights_[count_++] = x;
    if (count_ == 5) initialize();
    return;
  }
  ++count_;

  // Locate the cell containing x and clamp the extreme markers.
  std::size_t cell;
  if (x < heights_[0]) {
    heights_[0] = x;
    cell = 0;
  } else if (x >= heights_[4]) {
    heights_[4] = std::max(heights_[4], x);
    cell = 3;
  } else {
    cell = 0;
    while (cell < 3 && x >= heights_[cell + 1]) ++cell;
  }

  for (std::size_t i = cell + 1; i < 5; ++i) positions_[i] += 1.0;
  for (std::size_t i = 0; i < 5; ++i) {
    desired_[i] += increments_[i];
  }

  // Adjust the three interior markers toward their desired positions.
  for (std::size_t i = 1; i <= 3; ++i) {
    const double d = desired_[i] - positions_[i];
    const bool step_up = d >= 1.0 && positions_[i + 1] - positions_[i] > 1.0;
    const bool step_down = d <= -1.0 && positions_[i - 1] - positions_[i] < -1.0;
    if (!step_up && !step_down) continue;
    const double direction = d >= 0 ? 1.0 : -1.0;
    double candidate =
        parabolic(direction, heights_[i - 1], heights_[i], heights_[i + 1],
                  positions_[i - 1], positions_[i], positions_[i + 1]);
    if (candidate <= heights_[i - 1] || candidate >= heights_[i + 1]) {
      // Parabolic prediction left the bracket: fall back to linear.
      const std::size_t j = direction > 0 ? i + 1 : i - 1;
      candidate = heights_[i] + direction * (heights_[j] - heights_[i]) /
                                    (positions_[j] - positions_[i]);
    }
    heights_[i] = candidate;
    positions_[i] += direction;
  }
}

double P2Quantile::value() const noexcept {
  if (count_ == 0) return 0.0;
  if (count_ < 5) {
    // Exact small-sample quantile over the partial buffer.
    std::array<double, 5> sorted = heights_;
    std::sort(sorted.begin(), sorted.begin() + static_cast<std::ptrdiff_t>(count_));
    const double pos = q_ * static_cast<double>(count_ - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, count_ - 1);
    const double frac = pos - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
  }
  return heights_[2];
}

}  // namespace dsjoin::common
