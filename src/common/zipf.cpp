#include "dsjoin/common/zipf.hpp"

#include <cassert>
#include <cmath>

namespace dsjoin::common {

namespace {

// exp(x) - 1 evaluated stably, and its inverse, as used by the
// rejection-inversion construction for the alpha == 1 branch.
double helper1(double x) {
  return std::abs(x) > 1e-8 ? std::log1p(x) / x : 1.0 - x / 2.0 + x * x / 3.0;
}
double helper2(double x) { return std::abs(x) > 1e-8 ? std::expm1(x) / x : 1.0 + x / 2.0 + x * x / 6.0; }

}  // namespace

double generalized_harmonic(std::uint64_t n, double alpha) {
  // Direct summation below a threshold; Euler-Maclaurin beyond it. The
  // crossover keeps both the cost and the error negligible for the domain
  // sizes used in the experiments (up to 2^19 and beyond).
  constexpr std::uint64_t kDirect = 1u << 16;
  double sum = 0.0;
  const std::uint64_t direct = n < kDirect ? n : kDirect;
  for (std::uint64_t k = 1; k <= direct; ++k) sum += std::pow(static_cast<double>(k), -alpha);
  if (n <= kDirect) return sum;
  // Euler-Maclaurin for the tail (kDirect, n].
  const double a = static_cast<double>(kDirect);
  const double b = static_cast<double>(n);
  double integral;
  if (std::abs(alpha - 1.0) < 1e-12) {
    integral = std::log(b) - std::log(a);
  } else {
    integral = (std::pow(b, 1.0 - alpha) - std::pow(a, 1.0 - alpha)) / (1.0 - alpha);
  }
  const double fa = std::pow(a, -alpha);
  const double fb = std::pow(b, -alpha);
  // Trapezoid correction plus the first Bernoulli term.
  sum += integral + 0.5 * (fb - fa);
  sum += (alpha / 12.0) * (std::pow(a, -alpha - 1.0) - std::pow(b, -alpha - 1.0));
  return sum;
}

ZipfDistribution::ZipfDistribution(std::uint64_t n, double alpha)
    : n_(n), alpha_(alpha) {
  assert(n >= 1);
  assert(alpha >= 0.0);
  h_x1_ = h_integral(1.5) - 1.0;
  h_n_ = h_integral(static_cast<double>(n) + 0.5);
  s_ = 2.0 - h_integral_inverse(h_integral(2.5) - std::pow(2.0, -alpha));
  harmonic_ = generalized_harmonic(n, alpha);
}

double ZipfDistribution::h_integral(double x) const {
  const double log_x = std::log(x);
  return helper2((1.0 - alpha_) * log_x) * log_x;
}

double ZipfDistribution::h_integral_inverse(double x) const {
  double t = x * (1.0 - alpha_);
  if (t < -1.0) t = -1.0;  // guard against rounding below the branch point
  return std::exp(helper1(t) * x);
}

std::uint64_t ZipfDistribution::operator()(Xoshiro256& rng) const {
  if (n_ == 1) return 1;
  for (;;) {
    const double u = h_n_ + rng.next_double() * (h_x1_ - h_n_);
    const double x = h_integral_inverse(u);
    std::uint64_t k = static_cast<std::uint64_t>(x + 0.5);
    if (k < 1) k = 1;
    if (k > n_) k = n_;
    const double kd = static_cast<double>(k);
    // Accept if u falls under the true pmf at k (the envelope construction
    // guarantees acceptance probability > 0.7 for all alpha).
    if (u >= h_integral(kd + 0.5) - std::pow(kd, -alpha_) || x >= kd - s_) {
      return k;
    }
  }
}

double ZipfDistribution::pmf(std::uint64_t k) const {
  if (k < 1 || k > n_) return 0.0;
  return std::pow(static_cast<double>(k), -alpha_) / harmonic_;
}

}  // namespace dsjoin::common
