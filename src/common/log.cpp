#include "dsjoin/common/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <mutex>
#include <string>

namespace dsjoin::common {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_emit_mutex;

const char* tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) noexcept {
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel log_level() noexcept { return g_level.load(std::memory_order_relaxed); }

void log(LogLevel level, const char* fmt, ...) {
  if (level < log_level()) return;
  std::va_list args;
  va_start(args, fmt);
  std::va_list copy;
  va_copy(copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string message;
  if (needed > 0) {
    message.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(message.data(), message.size() + 1, fmt, copy);
  }
  va_end(copy);
  detail::emit(level, message);
}

namespace detail {

void emit(LogLevel level, std::string_view message) {
  using clock = std::chrono::steady_clock;
  static const clock::time_point start = clock::now();
  const double secs =
      std::chrono::duration<double>(clock::now() - start).count();
  std::lock_guard lock(g_emit_mutex);
  std::fprintf(stderr, "[%10.4f] %s %.*s\n", secs, tag(level),
               static_cast<int>(message.size()), message.data());
}

}  // namespace detail
}  // namespace dsjoin::common
