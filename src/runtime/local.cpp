#include "dsjoin/runtime/local.hpp"

#include <chrono>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "dsjoin/common/log.hpp"
#include "dsjoin/core/node_host.hpp"
#include "dsjoin/net/tcp_transport.hpp"
#include "dsjoin/runtime/daemon.hpp"
#include "dsjoin/runtime/schedule.hpp"

namespace dsjoin::runtime {

RunReport run_local(const core::SystemConfig& config, LocalOptions options) {
  CoordinatorOptions coordinator_options;
  coordinator_options.port = 0;
  coordinator_options.config = config;
  coordinator_options.verify = options.verify;
  Coordinator coordinator(coordinator_options);

  std::vector<std::thread> daemons;
  daemons.reserve(config.nodes);
  for (std::uint32_t i = 0; i < config.nodes; ++i) {
    DaemonOptions daemon_options;
    daemon_options.coordinator = net::Endpoint{"127.0.0.1", coordinator.port()};
    daemon_options.pace = options.pace;
    daemons.emplace_back([daemon_options] {
      NodeDaemon daemon(daemon_options);
      auto status = daemon.run();
      if (!status.is_ok()) {
        DSJOIN_LOG_WARN("local daemon exited: %s",
                        status.to_string().c_str());
      }
    });
  }
  RunReport report = coordinator.run();
  for (auto& thread : daemons) thread.join();
  return report;
}

RunReport run_inprocess_tcp(const core::SystemConfig& config) {
  RunReport result;
  result.backend = core::Backend::kTcpInprocess;
  result.nodes_admitted = config.nodes;

  const auto schedule = core::ArrivalSchedule::build(config);

  net::TcpTransport transport(config.nodes);
  std::vector<std::unique_ptr<core::NodeHost>> hosts;
  hosts.reserve(config.nodes);
  // One coarse lock serializes all node work: receiver-thread deliveries
  // and the arrival loop below. Throughput is irrelevant here — this mode
  // exists as a correctness baseline.
  std::mutex mutex;
  for (net::NodeId id = 0; id < config.nodes; ++id) {
    hosts.push_back(std::make_unique<core::NodeHost>(config, id, transport));
  }
  for (net::NodeId id = 0; id < config.nodes; ++id) {
    core::NodeHost* host = hosts[id].get();
    transport.register_handler(id, [host, &mutex](net::Frame&& frame) {
      std::lock_guard lock(mutex);
      // Forwarded work is timestamped with the tuple era it belongs to;
      // precise receive times only matter for reporting latency, which
      // this baseline does not measure.
      host->deliver(std::move(frame), 0.0);
    });
  }

  const auto started_at = std::chrono::steady_clock::now();
  for (const auto& tuple : schedule.tuples) {
    std::lock_guard lock(mutex);
    hosts[tuple.origin]->ingest(tuple, tuple.timestamp);
  }

  // Drain with the same two-phase FIN handshake the daemons use: each host
  // announces its tuples are all sent (FIN-1), then that its results are
  // all sent (FIN-2); per-link TCP FIFO makes both statements exact.
  for (auto& host : hosts) host->begin_drain({});
  result.clean = true;
  for (auto& host : hosts) {
    // Without the coarse lock: FIN frames must keep flowing to complete.
    if (!host->wait_drain(30.0)) {
      result.clean = false;
      result.error = "in-process run failed to drain";
    }
  }
  result.makespan_s = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - started_at)
                          .count();
  transport.shutdown();

  std::vector<core::NodeReport> reports;
  reports.reserve(hosts.size());
  // The transport's counters are the global union already; per-host
  // snapshots would double-count, so aggregation skips traffic merging.
  for (const auto& host : hosts) reports.push_back(host->report({}));
  const auto pairs = core::aggregate_node_reports(reports, &result,
                                                  /*merge_traffic=*/false);
  result.traffic = transport.stats();
  core::verify_against_schedule(config, pairs, &result);
  core::finalize_derived_metrics(&result);
  return result;
}

}  // namespace dsjoin::runtime
