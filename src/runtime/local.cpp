#include "dsjoin/runtime/local.hpp"

#include <chrono>
#include <cmath>
#include <limits>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "dsjoin/common/log.hpp"
#include "dsjoin/core/node_host.hpp"
#include "dsjoin/net/tcp_transport.hpp"
#include "dsjoin/runtime/daemon.hpp"
#include "dsjoin/runtime/schedule.hpp"

namespace dsjoin::runtime {

RunReport run_local(const core::SystemConfig& config, LocalOptions options) {
  CoordinatorOptions coordinator_options;
  coordinator_options.port = 0;
  coordinator_options.config = config;
  coordinator_options.verify = options.verify;
  Coordinator coordinator(coordinator_options);

  std::vector<std::thread> daemons;
  daemons.reserve(config.nodes);
  for (std::uint32_t i = 0; i < config.nodes; ++i) {
    DaemonOptions daemon_options;
    daemon_options.coordinator = net::Endpoint{"127.0.0.1", coordinator.port()};
    daemon_options.pace = options.pace;
    daemons.emplace_back([daemon_options] {
      NodeDaemon daemon(daemon_options);
      auto status = daemon.run();
      if (!status.is_ok()) {
        DSJOIN_LOG_WARN("local daemon exited: %s",
                        status.to_string().c_str());
      }
    });
  }
  RunReport report = coordinator.run();
  for (auto& thread : daemons) thread.join();
  return report;
}

RunReport run_inprocess_tcp(const core::SystemConfig& config) {
  RunReport result;
  result.backend = core::Backend::kTcpInprocess;
  result.nodes_admitted = config.nodes;

  const auto schedule = core::ArrivalSchedule::build(config);

  // coalesce_frames <= 1 is the per-tuple baseline bench_wire_throughput
  // measures against: one wire record and one handler invocation per frame,
  // one ingest call (and one lock acquisition) per tuple.
  const bool batched = config.coalesce_frames > 1;
  net::CoalesceOptions coalesce;
  coalesce.max_frames = batched ? config.coalesce_frames : 1;
  coalesce.max_bytes = config.coalesce_bytes;
  coalesce.linger_s = config.coalesce_linger_s;
  net::TcpTransport transport(config.nodes, /*base_port=*/0,
                              /*link_rate_bytes_per_s=*/0.0, coalesce);
  std::vector<std::unique_ptr<core::NodeHost>> hosts;
  hosts.reserve(config.nodes);
  // One coarse lock serializes all node work: receiver-thread deliveries
  // and the arrival loop below. Batching amortizes it — one acquisition
  // covers a whole decoded wire record or a whole ingest slice.
  std::mutex mutex;
  for (net::NodeId id = 0; id < config.nodes; ++id) {
    hosts.push_back(std::make_unique<core::NodeHost>(config, id, transport));
  }
  for (net::NodeId id = 0; id < config.nodes; ++id) {
    core::NodeHost* host = hosts[id].get();
    // Forwarded work is timestamped with the tuple era it belongs to;
    // precise receive times only matter for reporting latency, which
    // this backend does not measure.
    if (batched) {
      transport.register_batch_handler(
          id, [host, &mutex](std::vector<net::Frame>&& frames) {
            std::lock_guard lock(mutex);
            for (net::Frame& frame : frames) {
              host->deliver(std::move(frame), 0.0);
            }
          });
    } else {
      transport.register_handler(id, [host, &mutex](net::Frame&& frame) {
        std::lock_guard lock(mutex);
        host->deliver(std::move(frame), 0.0);
      });
    }
  }

  // Virtual-time summary sync (summary-driven policies only; DESIGN.md
  // §12): every host announces how far its own arrival clock will have
  // advanced before its next ingest, and each ingest first waits until all
  // peers' announcements cover its visibility epoch — after which no
  // summary that must apply before the chunk's end can still be in flight.
  // BASE/RR runs skip all of it (no watermark frames, no waits).
  const bool sync = hosts[0]->node().uses_summaries();
  const double sync_epoch = config.summary_sync_epoch_s;
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<std::vector<double>> arrival_times(config.nodes);
  std::vector<std::size_t> cursor(config.nodes, 0);
  if (sync) {
    for (const auto& tuple : schedule.tuples) {
      arrival_times[tuple.origin].push_back(tuple.timestamp);
    }
    for (auto& host : hosts) host->enable_summary_watermarks();
    for (net::NodeId id = 0; id < config.nodes; ++id) {
      hosts[id]->announce_summary_watermark(
          arrival_times[id].empty() ? kInf : arrival_times[id].front());
    }
  }
  // Post-chunk announcement: the next own arrival bounds every future
  // emission; an exhausted schedule announces its last arrival and then
  // infinity (one frame), the same sequence the node daemon produces.
  const auto after_chunk = [&](net::NodeId id, std::size_t count) {
    if (!sync) return;
    cursor[id] += count;
    const auto& times = arrival_times[id];
    if (cursor[id] < times.size()) {
      hosts[id]->announce_summary_watermark(times[cursor[id]]);
    } else {
      hosts[id]->announce_summary_watermark(times.back());
      hosts[id]->announce_summary_watermark(kInf);
    }
  };

  const auto started_at = std::chrono::steady_clock::now();
  if (batched) {
    // Group consecutive same-origin arrivals into one ingest_batch call.
    // The schedule's global arrival order is preserved exactly; the cap
    // keeps any one locked section short so receiver deliveries interleave.
    // Under summary sync a chunk additionally never spans a visibility
    // epoch boundary (the cover wait is per-epoch).
    const auto& tuples = schedule.tuples;
    const std::size_t max_run = config.coalesce_frames;
    std::size_t i = 0;
    while (i < tuples.size()) {
      const double epoch = std::floor(tuples[i].timestamp / sync_epoch);
      std::size_t j = i + 1;
      while (j < tuples.size() && tuples[j].origin == tuples[i].origin &&
             j - i < max_run &&
             (!sync ||
              std::floor(tuples[j].timestamp / sync_epoch) == epoch)) {
        ++j;
      }
      if (sync) {
        // Without the coarse lock: cover frames arrive on receiver threads.
        hosts[tuples[i].origin]->await_summary_cover(tuples[i].timestamp, 30.0);
      }
      {
        std::lock_guard lock(mutex);
        hosts[tuples[i].origin]->ingest_batch(
            std::span<const stream::Tuple>(tuples.data() + i, j - i));
      }
      after_chunk(tuples[i].origin, j - i);
      i = j;
    }
  } else {
    for (const auto& tuple : schedule.tuples) {
      if (sync) hosts[tuple.origin]->await_summary_cover(tuple.timestamp, 30.0);
      {
        std::lock_guard lock(mutex);
        hosts[tuple.origin]->ingest(tuple, tuple.timestamp);
      }
      after_chunk(tuple.origin, 1);
    }
  }

  // Drain with the same two-phase FIN handshake the daemons use: each host
  // announces its tuples are all sent (FIN-1), then that its results are
  // all sent (FIN-2); per-link TCP FIFO makes both statements exact. FINs
  // are control frames, so they flush every coalescing buffer ahead of
  // themselves — no frame can outlive the drain in a SendBuffer.
  for (auto& host : hosts) host->begin_drain({});
  result.clean = true;
  for (auto& host : hosts) {
    // Without the coarse lock: FIN frames must keep flowing to complete.
    if (!host->wait_drain(30.0)) {
      result.clean = false;
      result.error = "in-process run failed to drain";
    }
  }
  result.makespan_s = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - started_at)
                          .count();
  transport.shutdown();

  std::vector<core::NodeReport> reports;
  reports.reserve(hosts.size());
  // Per-node traffic attribution: each host reports the counters for the
  // frames it sent (tracked per sender under that sender's send lock), so
  // aggregation merges them like every other backend — their union equals
  // the transport's global counters.
  for (const auto& host : hosts) {
    reports.push_back(host->report(transport.node_stats_snapshot(host->id())));
  }
  core::aggregate_node_reports(reports, &result, /*merge_traffic=*/true);
  core::verify_against_schedule(config, result.pairs, &result);
  core::finalize_derived_metrics(&result);
  return result;
}

}  // namespace dsjoin::runtime
