#include "dsjoin/runtime/local.hpp"

#include <chrono>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "dsjoin/common/log.hpp"
#include "dsjoin/core/metrics.hpp"
#include "dsjoin/core/node.hpp"
#include "dsjoin/net/tcp_transport.hpp"
#include "dsjoin/runtime/daemon.hpp"
#include "dsjoin/runtime/schedule.hpp"

namespace dsjoin::runtime {

RunReport run_local(const core::SystemConfig& config, LocalOptions options) {
  CoordinatorOptions coordinator_options;
  coordinator_options.port = 0;
  coordinator_options.config = config;
  coordinator_options.verify = options.verify;
  Coordinator coordinator(coordinator_options);

  std::vector<std::thread> daemons;
  daemons.reserve(config.nodes);
  for (std::uint32_t i = 0; i < config.nodes; ++i) {
    DaemonOptions daemon_options;
    daemon_options.coordinator = net::Endpoint{"127.0.0.1", coordinator.port()};
    daemon_options.pace = options.pace;
    daemons.emplace_back([daemon_options] {
      NodeDaemon daemon(daemon_options);
      auto status = daemon.run();
      if (!status.is_ok()) {
        DSJOIN_LOG_WARN("local daemon exited: %s",
                        status.to_string().c_str());
      }
    });
  }
  RunReport report = coordinator.run();
  for (auto& thread : daemons) thread.join();
  return report;
}

RunReport run_inprocess_tcp(const core::SystemConfig& config) {
  RunReport report;
  report.nodes_admitted = config.nodes;

  const auto schedule = ArrivalSchedule::build(config);

  net::TcpTransport transport(config.nodes);
  core::MetricsCollector metrics;
  metrics.set_node_count(config.nodes);
  std::vector<std::unique_ptr<core::Node>> nodes;
  nodes.reserve(config.nodes);
  // One coarse lock serializes all node work: receiver-thread deliveries
  // and the arrival loop below. Throughput is irrelevant here — this mode
  // exists as a correctness baseline.
  std::mutex mutex;
  for (net::NodeId id = 0; id < config.nodes; ++id) {
    nodes.push_back(
        std::make_unique<core::Node>(config, id, transport, metrics));
  }
  for (net::NodeId id = 0; id < config.nodes; ++id) {
    core::Node* node = nodes[id].get();
    transport.register_handler(id, [node, &mutex](net::Frame&& frame) {
      std::lock_guard lock(mutex);
      // Forwarded work is timestamped with the tuple era it belongs to;
      // precise receive times only matter for reporting latency, which
      // this baseline does not measure.
      node->on_frame(std::move(frame), 0.0);
    });
  }

  for (const auto& tuple : schedule.tuples) {
    std::lock_guard lock(mutex);
    nodes[tuple.origin]->on_local_tuple(tuple, tuple.timestamp);
  }
  report.total_arrivals = schedule.tuples.size();

  // Quiesce: frames are still in flight through kernel buffers and
  // receiver threads. Settled = no observable progress for a while.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  auto observe = [&] {
    std::lock_guard lock(mutex);
    std::uint64_t progress = metrics.distinct_pairs();
    for (const auto& node : nodes) {
      progress += node->received_tuples() + node->decode_failures();
    }
    return progress;
  };
  auto last = observe();
  auto last_change = std::chrono::steady_clock::now();
  for (;;) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    const auto now_progress = observe();
    const auto now = std::chrono::steady_clock::now();
    if (now_progress != last) {
      last = now_progress;
      last_change = now;
    } else if (now - last_change > std::chrono::milliseconds(300)) {
      break;
    }
    if (now > deadline) {
      report.error = "in-process run failed to quiesce";
      transport.shutdown();
      return report;
    }
  }
  transport.shutdown();

  report.clean = true;
  report.reported_pairs = metrics.distinct_pairs();
  report.traffic = transport.stats();
  report.exact_pairs = exact_pairs(schedule, config.join_half_width_s);
  const auto pairs = metrics.pairs();
  report.false_pairs =
      count_false_pairs(schedule, config.join_half_width_s, pairs);
  report.epsilon =
      report.exact_pairs == 0
          ? 0.0
          : 1.0 - static_cast<double>(report.reported_pairs) /
                      static_cast<double>(report.exact_pairs);
  return report;
}

}  // namespace dsjoin::runtime
