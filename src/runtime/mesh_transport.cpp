#include "dsjoin/runtime/mesh_transport.hpp"

#include <sys/socket.h>

#include <chrono>
#include <string>

#include "dsjoin/common/log.hpp"
#include "dsjoin/common/strformat.hpp"

namespace dsjoin::runtime {

namespace {

common::Status fail(const char* what, const std::string& detail) {
  return common::Status(common::ErrorCode::kUnavailable,
                        common::str_format("%s: %s", what, detail.c_str()));
}

}  // namespace

MeshTransport::MeshTransport(net::NodeId self, std::size_t nodes,
                             net::UniqueFd listener,
                             std::vector<net::Endpoint> peers,
                             MeshOptions options)
    : self_(self),
      nodes_(nodes),
      listener_(std::move(listener)),
      peers_(std::move(peers)),
      options_(options),
      peer_fds_(nodes),
      alive_(nodes) {
  send_mutexes_.reserve(nodes);
  send_buffers_.reserve(nodes);
  for (std::size_t i = 0; i < nodes; ++i) {
    send_mutexes_.push_back(std::make_unique<std::mutex>());
    send_buffers_.emplace_back(options_.coalesce);
    alive_[i].store(false);
  }
}

MeshTransport::~MeshTransport() { shutdown(); }

void MeshTransport::register_handler(net::NodeId node,
                                     net::DeliveryHandler handler) {
  // This transport IS node `self`; there is nobody else in-process.
  if (node == self_) handler_ = std::move(handler);
}

common::Status MeshTransport::connect_mesh() {
  if (nodes_ < 2 || self_ >= nodes_ || peers_.size() != nodes_) {
    return common::Status(common::ErrorCode::kInvalidArgument,
                          "bad mesh geometry");
  }
  // Dial every higher-numbered peer; it identifies us by the u32 id we
  // send first. Retry with backoff: the peer's daemon may not be up yet.
  for (net::NodeId peer = self_ + 1; peer < nodes_; ++peer) {
    auto fd = net::tcp_connect_retry(peers_[peer], options_.connect_timeout_s,
                                     options_.dial_base_delay_s,
                                     options_.dial_max_delay_s);
    if (!fd) return fd.status();
    const std::uint32_t id = self_;
    if (!net::write_all(fd.value().get(),
                        reinterpret_cast<const std::uint8_t*>(&id), 4)) {
      return fail("mesh hello", "write to peer " + std::to_string(peer));
    }
    peer_fds_[peer] = std::move(fd).value();
  }
  // Accept every lower-numbered peer (they dial us), identified by the id
  // they send. Arrival order is arbitrary.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(options_.connect_timeout_s);
  for (net::NodeId remaining = self_; remaining > 0; --remaining) {
    const double left =
        std::chrono::duration<double>(deadline - std::chrono::steady_clock::now())
            .count();
    if (left <= 0.0) {
      return fail("mesh accept", "timed out waiting for lower-numbered peers");
    }
    auto fd = net::tcp_accept(listener_.get(), left);
    if (!fd) return fd.status();
    std::uint32_t id = 0;
    if (!net::read_exact(fd.value().get(), reinterpret_cast<std::uint8_t*>(&id),
                         4)) {
      return fail("mesh hello", "read from dialing peer");
    }
    if (id >= self_ || peer_fds_[id].valid()) {
      return fail("mesh hello", "unexpected peer id " + std::to_string(id));
    }
    peer_fds_[id] = std::move(fd).value();
  }
  for (net::NodeId peer = 0; peer < nodes_; ++peer) {
    if (peer == self_) continue;
    alive_[peer].store(true);
  }
  receivers_.reserve(nodes_ - 1);
  for (net::NodeId peer = 0; peer < nodes_; ++peer) {
    if (peer == self_) continue;
    receivers_.emplace_back([this, peer] { receiver_loop(peer); });
  }
  return common::Status::ok();
}

common::Status MeshTransport::send(net::Frame&& frame) {
  const net::NodeId to = frame.to;
  if (to >= nodes_ || to == self_ || frame.from != self_) {
    return common::Status(common::ErrorCode::kInvalidArgument,
                          "bad frame address");
  }
  if (!alive_[to].load()) {
    return common::Status(common::ErrorCode::kUnavailable,
                          "peer " + std::to_string(to) + " is down");
  }
  {
    std::lock_guard lock(totals_mutex_);
    totals_.record(frame);
  }
  bool flushed = false;
  std::uint64_t saved = 0;
  {
    std::lock_guard lock(*send_mutexes_[to]);
    if (send_buffers_[to].push(std::move(frame))) {
      flushed = true;
      if (!send_buffers_[to].flush(peer_fds_[to].get(), &saved)) {
        // A send failing is how WE discover a peer died mid-write; the
        // receiver loop (EOF) handles the callback, we just stop sending.
        alive_[to].store(false);
        return common::Status(
            common::ErrorCode::kUnavailable,
            "write to peer " + std::to_string(to) + " failed");
      }
    }
  }
  if (flushed) {
    std::lock_guard lock(totals_mutex_);
    totals_.record_flush(saved);
  }
  return common::Status::ok();
}

void MeshTransport::mark_peer_dead(net::NodeId peer) noexcept {
  if (peer < nodes_ && peer != self_) alive_[peer].store(false);
}

void MeshTransport::receiver_loop(net::NodeId peer) {
  const int fd = peer_fds_[peer].get();
  std::vector<net::Frame> frames;
  std::vector<std::uint8_t> scratch;
  while (running_.load()) {
    frames.clear();
    if (!net::read_wire_frames(fd, &frames, &scratch)) break;
    if (batch_handler_) {
      batch_handler_(std::move(frames));
      frames = {};
    } else if (handler_) {
      for (net::Frame& frame : frames) handler_(std::move(frame));
    }
  }
  // EOF/error outside shutdown means the peer process died (or closed its
  // end). Fire the callback after the last delivered frame so the daemon
  // sees death ordered behind everything the peer managed to send. Each
  // peer has exactly one receiver thread, so at-most-once is structural —
  // even if a failed send (or a DRAIN dead list) cleared alive_ first.
  if (running_.load()) {
    alive_[peer].store(false);
    DSJOIN_LOG_INFO("node %u: peer %u data link down", self_, peer);
    if (peer_down_) peer_down_(peer);
  }
}

void MeshTransport::shutdown() {
  const bool was_running = running_.exchange(false);
  if (was_running) {
    for (net::NodeId peer = 0; peer < nodes_; ++peer) {
      if (peer_fds_[peer].valid()) {
        ::shutdown(peer_fds_[peer].get(), SHUT_RDWR);
      }
    }
    if (listener_.valid()) ::shutdown(listener_.get(), SHUT_RDWR);
  }
  for (auto& thread : receivers_) {
    if (thread.joinable()) thread.join();
  }
  receivers_.clear();
  if (was_running) {
    for (auto& fd : peer_fds_) fd.reset();
    listener_.reset();
  }
}

}  // namespace dsjoin::runtime
