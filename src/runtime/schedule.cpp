#include "dsjoin/runtime/schedule.hpp"

#include <cmath>
#include <queue>
#include <unordered_map>

#include "dsjoin/common/rng.hpp"
#include "dsjoin/core/oracle.hpp"
#include "dsjoin/stream/generator.hpp"

namespace dsjoin::runtime {

ArrivalSchedule ArrivalSchedule::build(const core::SystemConfig& config) {
  stream::WorkloadParams params;
  params.nodes = config.nodes;
  params.regions = config.regions;
  params.domain = config.domain;
  params.locality = config.locality;
  params.noise = config.noise;
  params.seed = config.seed;
  auto workload = stream::make_workload(config.workload, params);

  // Same rng tree as DspSystem: root seeded seed ^ 0xa771'7a1e, one fork
  // per (node, side) slot, in slot order.
  common::Xoshiro256 root(config.seed ^ 0xa771'7a1eULL);
  std::vector<common::Xoshiro256> rngs;
  const std::size_t slots = static_cast<std::size_t>(config.nodes) * 2;
  rngs.reserve(slots);
  for (std::size_t i = 0; i < slots; ++i) rngs.push_back(root.fork());

  // Per-slot arrival times: exponential inter-arrivals from t = 0. Each
  // slot's sequence is independent, so generating slot-by-slot draws the
  // same variates the simulator draws interleaved.
  std::vector<std::vector<double>> times(slots);
  for (std::size_t s = 0; s < slots; ++s) {
    times[s].reserve(config.tuples_per_node);
    double t = 0.0;
    for (std::uint64_t i = 0; i < config.tuples_per_node; ++i) {
      t += rngs[s].next_exponential(config.arrivals_per_second);
      times[s].push_back(t);
    }
  }

  // Global merge in (time, slot) order. Ids are dense from 1 in merge
  // order; keys are drawn here so each slot's workload rng is consumed in
  // its own time order, matching the simulator's per-slot call sequence.
  struct HeapItem {
    double time;
    std::size_t slot;
    std::size_t index;
  };
  auto later = [](const HeapItem& a, const HeapItem& b) {
    if (a.time != b.time) return a.time > b.time;
    return a.slot > b.slot;
  };
  std::priority_queue<HeapItem, std::vector<HeapItem>, decltype(later)> heap(
      later);
  for (std::size_t s = 0; s < slots; ++s) {
    if (!times[s].empty()) heap.push({times[s][0], s, 0});
  }

  ArrivalSchedule schedule;
  schedule.tuples.reserve(slots * config.tuples_per_node);
  std::uint64_t next_id = 1;
  while (!heap.empty()) {
    const HeapItem item = heap.top();
    heap.pop();
    const auto node = static_cast<net::NodeId>(item.slot / 2);
    const auto side = static_cast<stream::StreamSide>(item.slot % 2);
    stream::Tuple tuple;
    tuple.id = next_id++;
    tuple.key = workload->next_key(node, side, item.time);
    tuple.timestamp = item.time;
    tuple.origin = node;
    tuple.side = side;
    schedule.tuples.push_back(tuple);
    schedule.makespan_s = item.time;
    if (item.index + 1 < times[item.slot].size()) {
      heap.push({times[item.slot][item.index + 1], item.slot, item.index + 1});
    }
  }
  return schedule;
}

std::vector<stream::Tuple> ArrivalSchedule::for_node(net::NodeId node) const {
  std::vector<stream::Tuple> mine;
  for (const auto& tuple : tuples) {
    if (tuple.origin == node) mine.push_back(tuple);
  }
  return mine;
}

std::uint64_t exact_pairs(const ArrivalSchedule& schedule, double half_width) {
  core::ExactJoinOracle oracle(half_width);
  for (const auto& tuple : schedule.tuples) oracle.observe(tuple);
  return oracle.total_pairs();
}

std::uint64_t count_false_pairs(const ArrivalSchedule& schedule,
                                double half_width,
                                std::span<const stream::ResultPair> pairs) {
  std::unordered_map<std::uint64_t, const stream::Tuple*> by_id;
  by_id.reserve(schedule.tuples.size());
  for (const auto& tuple : schedule.tuples) by_id.emplace(tuple.id, &tuple);

  std::uint64_t false_pairs = 0;
  for (const auto& pair : pairs) {
    const auto r_it = by_id.find(pair.r_id);
    const auto s_it = by_id.find(pair.s_id);
    if (r_it == by_id.end() || s_it == by_id.end()) {
      ++false_pairs;
      continue;
    }
    const stream::Tuple& r = *r_it->second;
    const stream::Tuple& s = *s_it->second;
    const bool genuine = r.side == stream::StreamSide::kR &&
                         s.side == stream::StreamSide::kS && r.key == s.key &&
                         std::abs(r.timestamp - s.timestamp) <= half_width;
    if (!genuine) ++false_pairs;
  }
  return false_pairs;
}

}  // namespace dsjoin::runtime
