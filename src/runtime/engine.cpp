#include "dsjoin/runtime/engine.hpp"

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <vector>

#include "dsjoin/common/log.hpp"
#include "dsjoin/core/system.hpp"
#include "dsjoin/runtime/coordinator.hpp"
#include "dsjoin/runtime/daemon.hpp"
#include "dsjoin/runtime/local.hpp"

namespace dsjoin::runtime {

namespace {

// One OS process per node: fork (no exec) children that each run the full
// NodeDaemon lifecycle against an in-process coordinator. The parent must
// be effectively single-threaded at the fork points — the engine forks
// before the coordinator accepts anything, and each previous backend run
// joins all its threads before returning.
core::ExperimentResult run_multiprocess(const core::SystemConfig& config,
                                        bool verify) {
  CoordinatorOptions coordinator_options;
  coordinator_options.port = 0;
  coordinator_options.config = config;
  coordinator_options.verify = verify;
  Coordinator coordinator(coordinator_options);

  std::vector<pid_t> children;
  children.reserve(config.nodes);
  for (std::uint32_t i = 0; i < config.nodes; ++i) {
    const pid_t pid = fork();
    if (pid < 0) {
      for (const pid_t child : children) {
        kill(child, SIGKILL);
        waitpid(child, nullptr, 0);
      }
      core::ExperimentResult result;
      result.backend = core::Backend::kMultiprocess;
      result.error = "fork failed";
      return result;
    }
    if (pid == 0) {
      DaemonOptions daemon_options;
      daemon_options.coordinator = net::Endpoint{"127.0.0.1", coordinator.port()};
      NodeDaemon daemon(daemon_options);
      const auto status = daemon.run();
      if (!status.is_ok()) {
        DSJOIN_LOG_WARN("daemon process exited: %s",
                        status.to_string().c_str());
      }
      // _exit, not exit: the child shares the parent's atexit state and
      // inherited descriptors; only the daemon's outcome should escape.
      _exit(status.is_ok() ? 0 : 1);
    }
    children.push_back(pid);
  }

  core::ExperimentResult result = coordinator.run();
  result.backend = core::Backend::kMultiprocess;
  for (const pid_t child : children) {
    int wstatus = 0;
    waitpid(child, &wstatus, 0);
  }
  return result;
}

}  // namespace

core::ExperimentResult run_experiment(const core::SystemConfig& config,
                                      const EngineOptions& options) {
  // Every backplane funnels through the one validity gate, so a config a
  // CLI forgot to vet fails identically here and in the CONFIG decoder.
  if (auto valid = core::validate_config(config); !valid.is_ok()) {
    core::ExperimentResult result;
    result.backend = options.backend;
    result.error = valid.message();
    return result;
  }
  switch (options.backend) {
    case core::Backend::kSim:
      return core::run_experiment(config);
    case core::Backend::kTcpInprocess:
      return run_inprocess_tcp(config);
    case core::Backend::kMultiprocess:
      return run_multiprocess(config, options.verify);
  }
  core::ExperimentResult result;
  result.error = "unknown backend";
  return result;
}

}  // namespace dsjoin::runtime
