// Control-plane protocol between the coordinator and node daemons.
//
// The paper's prototype ran on twenty workstations; this runtime reproduces
// that deployment shape with one daemon process per node and a coordinator
// that owns membership, config distribution, run control and metrics
// aggregation. All of it flows over one TCP connection per daemon as typed
// length-prefixed messages (net::MsgSocket):
//
//   daemon -> coordinator: HELLO (advertise data endpoint)
//   coordinator -> daemon: CONFIG (node id, SystemConfig, peer endpoints)
//   daemon -> coordinator: HEARTBEAT (state kMeshed once the data mesh is up)
//   coordinator -> daemon: START
//   daemon -> coordinator: HEARTBEAT (kRunning ... kDone), periodic
//   coordinator -> daemon: DRAIN (with the dead-node list)
//   daemon -> coordinator: METRICS_REPORT (discovered pairs + counters)
//   coordinator -> daemon: BYE
//
// Messages are versioned as one unit: kProtocolVersion changes whenever any
// encoding here (or serialize_config) changes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dsjoin/common/serialize.hpp"
#include "dsjoin/core/config.hpp"
#include "dsjoin/core/experiment.hpp"
#include "dsjoin/net/channel.hpp"
#include "dsjoin/net/stats.hpp"
#include "dsjoin/stream/tuple.hpp"

namespace dsjoin::runtime {

// v3: SystemConfig grew summary_sync_epoch_s, summary frames carry a
// virtual-time stamp, and METRICS_REPORT carries late_summaries.
// v4: SystemConfig grew summary_quant_bits and summary blocks may carry
// quantized coefficient sub-blocks (tags 'd' and 'h').
// v5: SystemConfig grew sample_capacity/sample_strata, summary blocks may
// carry stratified-sample sub-blocks (tag 'S'), and METRICS_REPORT carries
// the predicted-epsilon bound masses.
// v6: SystemConfig grew the registered query list, tuple payloads may carry
// a query mask and result payloads a query id, summary blocks may carry
// query-scope wrappers (tag 'Q'), and METRICS_REPORT carries per-query
// sections.
inline constexpr std::uint32_t kProtocolVersion = 6;

enum class ControlType : std::uint8_t {
  kHello = 1,
  kConfig = 2,
  kStart = 3,
  kHeartbeat = 4,
  kMetricsReport = 5,
  kDrain = 6,
  kBye = 7,
};

const char* to_string(ControlType type) noexcept;

/// Daemon lifecycle states carried in heartbeats.
enum class DaemonState : std::uint8_t {
  kJoining = 0,   ///< connected, waiting for CONFIG / forming the mesh
  kMeshed = 1,    ///< data-plane mesh up, waiting for START
  kRunning = 2,   ///< ingesting its arrival schedule
  kDone = 3,      ///< all local arrivals ingested, waiting for DRAIN
  kDraining = 4,  ///< flushing in-flight frames (FIN handshake)
};

const char* to_string(DaemonState state) noexcept;

/// HELLO: a daemon asks to join, advertising where peers can dial its
/// data-plane listener.
struct HelloMsg {
  std::uint32_t protocol = kProtocolVersion;
  net::Endpoint data_endpoint;

  std::vector<std::uint8_t> encode() const;
  static common::Result<HelloMsg> decode(std::span<const std::uint8_t> bytes);
};

/// CONFIG: the coordinator admits a daemon, assigns its node id and ships
/// the full experiment config plus every node's data endpoint.
struct ConfigMsg {
  net::NodeId node_id = 0;
  core::SystemConfig config;
  std::vector<net::Endpoint> peers;  ///< indexed by node id (self included)
  double heartbeat_period_s = 0.2;
  double mesh_timeout_s = 20.0;

  std::vector<std::uint8_t> encode() const;
  static common::Result<ConfigMsg> decode(std::span<const std::uint8_t> bytes);
};

/// HEARTBEAT: periodic daemon -> coordinator liveness + progress.
struct HeartbeatMsg {
  net::NodeId node_id = 0;
  DaemonState state = DaemonState::kJoining;
  std::uint64_t local_tuples = 0;     ///< arrivals ingested so far
  std::uint64_t pairs_discovered = 0; ///< distinct pairs in the local collector

  std::vector<std::uint8_t> encode() const;
  static common::Result<HeartbeatMsg> decode(std::span<const std::uint8_t> bytes);
};

/// METRICS_REPORT: a daemon's final accounting — core::NodeReport in wire
/// form. The pair list is the wire-metrics contract: every distinct
/// (r_id, s_id) the node discovered, deduplicated locally and sorted by
/// (r_id, s_id) so the encoding is byte-identical across runs; the
/// coordinator performs the *global* dedup (a pair may be discovered at
/// both owners) and computes epsilon against the oracle.
struct MetricsReportMsg {
  net::NodeId node_id = 0;
  std::uint64_t local_tuples = 0;
  std::uint64_t received_tuples = 0;
  std::uint64_t decode_failures = 0;
  std::uint64_t late_summaries = 0;
  double predicted_missed_mass = 0.0;
  double predicted_total_mass = 0.0;
  net::TrafficCounters traffic;  ///< frames this daemon sent, by kind
  /// Per-query sections in canonical (effective_queries) order — the wire
  /// form of NodeReport::queries (v6).
  std::vector<core::QueryNodeReport> queries;
  std::vector<stream::ResultPair> pairs;

  static MetricsReportMsg from_node_report(core::NodeReport report);
  core::NodeReport to_node_report() const;

  std::vector<std::uint8_t> encode() const;
  static common::Result<MetricsReportMsg> decode(std::span<const std::uint8_t> bytes);
};

/// DRAIN: all live daemons have reported kDone; flush in-flight frames.
/// Dead nodes are listed so daemons do not wait on FIN markers from them
/// (they also detect the deaths themselves via data-socket EOF; the list
/// covers daemons that never observed the dead peer's sockets closing).
struct DrainMsg {
  std::vector<net::NodeId> dead_nodes;

  std::vector<std::uint8_t> encode() const;
  static common::Result<DrainMsg> decode(std::span<const std::uint8_t> bytes);
};

// START and BYE carry no payload.

/// Endpoint wire helpers (shared by HELLO and CONFIG).
void serialize_endpoint(const net::Endpoint& endpoint, common::BufferWriter& out);
common::Result<net::Endpoint> deserialize_endpoint(common::BufferReader& in);

}  // namespace dsjoin::runtime
