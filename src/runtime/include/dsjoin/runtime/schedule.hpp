// Deterministic arrival schedule.
//
// The simulator generates arrivals on the fly from per-(node, side) rngs.
// The distributed runtime cannot: every daemon must agree on the global
// tuple ids (the metrics dedup key) and the coordinator's oracle needs the
// full arrival sequence, yet each daemon only ever ingests its own node's
// tuples. The schedule squares this by being a pure function of the
// SystemConfig: any process can regenerate the identical global sequence
// from the config alone and filter it down to one node. It mirrors the
// simulator's seeding exactly (root rng seed ^ 0xa771'7a1e, one forked rng
// per (node, side) slot, exponential inter-arrivals, workload-provided
// keys) minus backpressure feedback, which a fixed schedule cannot model.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dsjoin/core/config.hpp"
#include "dsjoin/stream/tuple.hpp"

namespace dsjoin::runtime {

struct ArrivalSchedule {
  /// All arrivals of all nodes, in nondecreasing timestamp order (ties
  /// broken by (node, side) slot), with dense globally unique ids from 1.
  std::vector<stream::Tuple> tuples;
  /// Virtual time of the last arrival.
  double makespan_s = 0.0;

  /// Builds the schedule for `config` (workload, seed, rate, count).
  static ArrivalSchedule build(const core::SystemConfig& config);

  /// The subsequence originating at `node`, in timestamp order.
  std::vector<stream::Tuple> for_node(net::NodeId node) const;
};

/// Exact |Psi| for a schedule: distinct (r, s) pairs with equal keys and
/// |r.ts - s.ts| <= half_width, over all nodes' arrivals.
std::uint64_t exact_pairs(const ArrivalSchedule& schedule, double half_width);

/// Counts reported pairs that are NOT true join results of the schedule —
/// the graceful-degradation contract requires this to be zero even when
/// peers die mid-run (a lost peer may lose results, never invent them).
std::uint64_t count_false_pairs(const ArrivalSchedule& schedule,
                                double half_width,
                                std::span<const stream::ResultPair> pairs);

}  // namespace dsjoin::runtime
