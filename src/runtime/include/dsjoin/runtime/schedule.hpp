// Forwarding header: the deterministic arrival schedule moved into core
// (dsjoin/core/schedule.hpp) when the experiment engine unified the
// backends — the simulator now draws from the same ArrivalSource the
// schedule materializes. Runtime callers keep their spelling.
#pragma once

#include "dsjoin/core/schedule.hpp"

namespace dsjoin::runtime {

using core::ArrivalSchedule;
using core::ArrivalSource;
using core::count_false_pairs;
using core::exact_pairs;

}  // namespace dsjoin::runtime
