// Multi-process data-plane transport.
//
// Where TcpTransport hosts all N nodes in one process, MeshTransport is one
// process's view of the same full mesh: it owns node `self`'s listener and
// its N-1 peer sockets, each in a separate daemon process (possibly on a
// separate machine). The wire format is identical — a frame written by
// either transport is readable by both.
//
// Mesh formation mirrors TcpTransport's in-process handshake: node i dials
// every higher-numbered peer (with capped-backoff retry, since daemons
// start in arbitrary order) and accepts from every lower-numbered one; the
// dialer identifies itself with a u32 node id.
//
// Peer death is a first-class event here, not an error: a SIGKILLed peer
// shows up as EOF on its socket. The receiver thread for that link invokes
// the peer-down callback after the link's last delivered frame (preserving
// per-link FIFO even across the death), sends to the dead peer return
// kUnavailable, and everything else keeps running — the graceful-
// degradation contract of the distributed runtime.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "dsjoin/net/channel.hpp"
#include "dsjoin/net/transport.hpp"

namespace dsjoin::runtime {

struct MeshOptions {
  /// Per-peer budget for mesh formation (dial retries / accept waits).
  double connect_timeout_s = 20.0;
  double dial_base_delay_s = 0.05;
  double dial_max_delay_s = 1.0;
  /// Per-peer SendBuffer flush budgets; the default (max_frames = 1)
  /// writes one wire record per frame.
  net::CoalesceOptions coalesce;
};

/// One node's end of a multi-process full TCP mesh.
class MeshTransport final : public net::Transport {
 public:
  /// Takes ownership of the already-bound data listener (bind-before-HELLO
  /// is what lets the daemon advertise a real ephemeral port). Peer sockets
  /// are not opened until connect_mesh().
  ///
  /// @param peers  endpoint per node id, self's entry ignored.
  MeshTransport(net::NodeId self, std::size_t nodes, net::UniqueFd listener,
                std::vector<net::Endpoint> peers, MeshOptions options = {});
  ~MeshTransport() override;

  /// Invoked (from the dead link's receiver thread) when a peer's data
  /// socket hits EOF or an error outside shutdown. Set before
  /// connect_mesh(); called at most once per peer.
  void set_peer_down(std::function<void(net::NodeId)> callback) {
    peer_down_ = std::move(callback);
  }

  /// Forms the mesh: dials higher-numbered peers (retrying while they come
  /// up), accepts lower-numbered ones, then starts one receiver thread per
  /// link. Everything stays down on failure; safe to destroy afterwards.
  common::Status connect_mesh();

  std::size_t node_count() const noexcept override { return nodes_; }
  void register_handler(net::NodeId node, net::DeliveryHandler handler) override;

  /// Installs a whole-record delivery handler (preferred over the
  /// per-frame one when both are set): the daemon enqueues a coalesced
  /// record as one dispatcher item instead of one item per frame.
  void set_batch_handler(net::BatchDeliveryHandler handler) {
    batch_handler_ = std::move(handler);
  }

  common::Status send(net::Frame&& frame) override;
  const net::TrafficCounters& stats() const noexcept override { return totals_; }

  /// Race-free copy of the counters (stats() hands out the live object,
  /// which concurrent senders keep mutating).
  net::TrafficCounters stats_snapshot() const {
    std::lock_guard lock(totals_mutex_);
    return totals_;
  }
  double send_backlog_seconds(net::NodeId) const noexcept override { return 0.0; }

  bool peer_alive(net::NodeId peer) const noexcept {
    return peer < nodes_ && peer != self_ && alive_[peer].load();
  }

  /// Marks a peer dead without a socket event (e.g. the coordinator's
  /// DRAIN carried it in the dead list). Sends to it start failing. The
  /// peer-down callback is not invoked here, but the link's receiver may
  /// still fire it when the socket eventually EOFs — callers must treat
  /// peer death idempotently.
  void mark_peer_dead(net::NodeId peer) noexcept;

  /// Closes every socket and joins receiver threads. Safe to call twice.
  void shutdown();

 private:
  void receiver_loop(net::NodeId peer);

  net::NodeId self_;
  std::size_t nodes_;
  net::UniqueFd listener_;
  std::vector<net::Endpoint> peers_;
  MeshOptions options_;
  std::function<void(net::NodeId)> peer_down_;
  net::DeliveryHandler handler_;
  net::BatchDeliveryHandler batch_handler_;

  std::atomic<bool> running_{true};
  std::vector<net::UniqueFd> peer_fds_;                     // by peer id
  std::vector<std::unique_ptr<std::mutex>> send_mutexes_;   // by peer id
  std::vector<net::SendBuffer> send_buffers_;               // by peer id
  mutable std::vector<std::atomic<bool>> alive_;            // by peer id
  std::vector<std::thread> receivers_;
  net::TrafficCounters totals_;
  mutable std::mutex totals_mutex_;
};

}  // namespace dsjoin::runtime
