// Single-process entry points to the distributed runtime.
//
// run_local() runs the complete coordinator/daemon protocol — real
// loopback sockets, real control plane, real mesh — with every daemon on a
// thread of the calling process instead of its own process. It is the
// runtime's in-proc mode: what the examples use, and what lets unit tests
// cover the protocol without fork/exec.
//
// run_inprocess_tcp() is the baseline the acceptance criterion measures
// against: the same nodes over the in-process TcpTransport with a shared
// metrics collector, fed from the same deterministic arrival schedule. The
// discovered-pair set is order-insensitive (a pair is found iff some node
// holds both tuples, routing is deterministic for the summary-free
// policies, nothing is evicted at experiment scale, and both modes drain
// fully), so a distributed run must reproduce its pair count and epsilon
// exactly.
#pragma once

#include "dsjoin/core/config.hpp"
#include "dsjoin/runtime/coordinator.hpp"

namespace dsjoin::runtime {

struct LocalOptions {
  /// Replay arrivals in real time (see DaemonOptions::pace).
  bool pace = false;
  /// Forwarded to CoordinatorOptions::verify.
  bool verify = true;
};

/// Coordinator + config.nodes daemon threads over loopback TCP.
RunReport run_local(const core::SystemConfig& config, LocalOptions options = {});

/// Baseline: the same experiment over the in-process TcpTransport (all
/// nodes in one process sharing one metrics collector).
RunReport run_inprocess_tcp(const core::SystemConfig& config);

}  // namespace dsjoin::runtime
