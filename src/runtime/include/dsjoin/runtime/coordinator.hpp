// Coordinator: admits node daemons, distributes the experiment config,
// starts the run, watches liveness, drives the drain, and aggregates the
// wire-shipped metrics into one experiment report.
//
// The coordinator is the distributed runtime's analogue of DspSystem's
// driver loop: it owns the global views a single process got for free —
// the exact-join oracle (recomputed from the deterministic arrival
// schedule) and the globally deduplicated pair set (each daemon ships the
// pairs it discovered; a pair found at both owners must count once).
//
// Failure model: a daemon that closes its control socket, errors it, or
// goes silent past the heartbeat timeout is dead. Deaths after START
// degrade the run (survivors drain around the hole, coverage is partial,
// epsilon honest) — they do not fail it. Deaths before START fail the run,
// because the mesh cannot form without every member.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "dsjoin/core/config.hpp"
#include "dsjoin/core/experiment.hpp"
#include "dsjoin/net/channel.hpp"
#include "dsjoin/net/stats.hpp"
#include "dsjoin/runtime/control.hpp"

namespace dsjoin::runtime {

struct CoordinatorOptions {
  /// Control listener port; 0 binds ephemeral (read back via port()).
  std::uint16_t port = 0;
  core::SystemConfig config;
  /// Budget for all config.nodes daemons to dial in and HELLO.
  double admit_timeout_s = 30.0;
  /// Budget for the mesh to form (each daemon's dial/accept window, and
  /// the coordinator's wait for every MESHED heartbeat).
  double mesh_timeout_s = 20.0;
  double heartbeat_period_s = 0.2;
  /// A live daemon silent for this long is declared dead. Generous versus
  /// the period: a busy loopback box schedules threads unevenly.
  double heartbeat_timeout_s = 5.0;
  /// Hard ceiling on the whole ingest phase (START -> all DONE).
  double run_timeout_s = 120.0;
  /// Budget for the FIN drain plus metrics reports.
  double drain_timeout_s = 30.0;
  /// Recompute the arrival schedule and oracle for epsilon/false-pair
  /// accounting (skippable for pure smoke runs).
  bool verify = true;
};

/// Outcome of one distributed run — the engine's unified result struct
/// (the coordinator's REPORT line and DspSystem::run() are the same fields
/// computed by the same core helpers). `clean` means the protocol ran to
/// completion, possibly degraded (nodes_failed > 0); false means a
/// setup-phase failure, see `error`. exact_pairs / false_pairs / epsilon
/// are filled only when CoordinatorOptions::verify is set.
using RunReport = core::ExperimentResult;

class Coordinator {
 public:
  /// Binds the control listener (throws std::runtime_error on failure —
  /// setup is not a recoverable path, mirroring TcpTransport).
  explicit Coordinator(CoordinatorOptions options);

  /// The control port daemons should dial.
  std::uint16_t port() const noexcept { return port_; }

  /// Drives one complete run. Blocks until the report is final; never
  /// throws for daemon misbehavior or death.
  RunReport run();

 private:
  struct Member {
    net::MsgSocket control;
    net::Endpoint data_endpoint;
    DaemonState state = DaemonState::kJoining;
    std::chrono::steady_clock::time_point last_heard;
    bool alive = true;
    bool reported = false;
    MetricsReportMsg report;
  };

  /// Accepts and HELLOs config.nodes daemons. Empty return = error text.
  std::string admit(std::vector<Member>* members);
  /// Polls every live member once; updates states, declares deaths.
  /// Heartbeat-silence deaths are only enforced when asked: daemons
  /// legitimately go quiet while blocked in the FIN drain.
  void poll_members(std::vector<Member>* members, bool enforce_heartbeat);
  void finalize(const std::vector<Member>& members, RunReport* report);

  CoordinatorOptions options_;
  net::UniqueFd listener_;
  std::uint16_t port_ = 0;
};

}  // namespace dsjoin::runtime
