// Node daemon: one process hosting one core::Node of the distributed join.
//
// Lifecycle (driven by the coordinator over the control socket):
//
//   bind data listener (ephemeral) -> dial coordinator (retry) -> HELLO
//   -> CONFIG (learn node id, experiment config, peer endpoints)
//   -> form the data mesh -> heartbeat MESHED -> START
//   -> ingest this node's slice of the deterministic arrival schedule
//   -> heartbeat DONE -> DRAIN -> FIN handshake -> METRICS_REPORT -> BYE
//
// Threading. Four threads share the node:
//   * mesh receiver threads (inside MeshTransport) only *enqueue* incoming
//     frames — they never touch the node, so a peer blasting at us can
//     never deadlock against our own blocked sends (the classic TCP
//     full-mesh buffer deadlock);
//   * a dispatcher thread drains that queue into node.on_frame under the
//     node mutex;
//   * an arrival thread feeds the local schedule via node.on_local_tuple
//     under the same mutex;
//   * the main thread runs the control loop (coordinator messages +
//     heartbeats).
//
// Drain protocol (two-phase FIN over the data plane, FrameKind::kControl):
// after DRAIN, the daemon sends FIN-1 to every live peer. Receiving FIN-1
// from a peer means — per-link TCP FIFO — every tuple frame that peer sent
// us has been processed, and symmetrically our FIN-1 tells the peer all our
// tuples are in. A peer that has FIN-1 from everyone has also *sent* every
// result frame it will ever send, so it then emits FIN-2; once we hold
// FIN-2 from every live peer, every result frame addressed to us is in and
// the pair set is complete. A dead peer counts as implicitly FINished, and
// a timeout guard proceeds with whatever arrived — partial coverage,
// never a hang.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "dsjoin/common/status.hpp"
#include "dsjoin/core/metrics.hpp"
#include "dsjoin/core/node.hpp"
#include "dsjoin/net/channel.hpp"
#include "dsjoin/runtime/control.hpp"
#include "dsjoin/runtime/mesh_transport.hpp"

namespace dsjoin::runtime {

struct DaemonOptions {
  net::Endpoint coordinator;
  /// Budget for dialing the coordinator (capped-backoff retry) and for
  /// waiting on CONFIG / START.
  double connect_timeout_s = 20.0;
  /// Replay arrivals in real time (sleep to each tuple's virtual
  /// timestamp) instead of as fast as possible. Keeps a run open long
  /// enough for mid-stream fault injection.
  bool pace = false;
  /// Guard on the FIN handshake; on expiry the daemon reports whatever
  /// results it holds instead of hanging.
  double drain_timeout_s = 20.0;
};

/// Runs one node's full daemon lifecycle. Single-run, like DspSystem.
class NodeDaemon {
 public:
  explicit NodeDaemon(DaemonOptions options) : options_(std::move(options)) {}
  ~NodeDaemon();

  /// Blocks until the run completes (BYE) or fails. A dead *peer* is not a
  /// failure — the daemon degrades and still reports; a dead coordinator
  /// or an unformable mesh is.
  common::Status run();

  net::NodeId node_id() const noexcept { return node_id_; }

 private:
  /// One ordered unit of data-plane input: a frame, or a peer-death marker
  /// queued by the mesh after the peer's last frame.
  struct QueueItem {
    bool peer_down = false;
    net::NodeId peer = 0;
    net::Frame frame;
  };

  common::Status handshake(net::MsgSocket& control, ConfigMsg* out);
  void dispatcher_loop();
  void arrival_loop();
  void enqueue(QueueItem item);
  void handle_fin(net::NodeId peer, std::uint8_t phase);
  void note_peer_dead(net::NodeId peer);
  /// Sends FIN-2 once phase 1 completes; signals completion when phase 2
  /// does. Call with fin_mutex_ held.
  void advance_fin_locked();
  bool fin_phase1_complete_locked() const;
  bool fin_phase2_complete_locked() const;
  void send_fin(std::uint8_t phase);
  void send_heartbeat(net::MsgSocket& control, DaemonState state);
  MetricsReportMsg build_report();
  void stop_threads();

  DaemonOptions options_;
  net::NodeId node_id_ = 0;
  std::uint32_t nodes_ = 0;
  core::SystemConfig config_;
  double heartbeat_period_s_ = 0.2;

  std::unique_ptr<MeshTransport> mesh_;
  core::MetricsCollector metrics_;
  std::unique_ptr<core::Node> node_;

  // Node state shared by the arrival and dispatcher threads.
  std::mutex node_mutex_;
  double virtual_now_ = 0.0;           // latest local arrival timestamp
  std::uint64_t arrivals_ingested_ = 0;

  // Frame queue (mesh receivers -> dispatcher).
  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<QueueItem> queue_;
  bool queue_stopped_ = false;

  // FIN / drain state.
  std::mutex fin_mutex_;
  std::condition_variable fin_cv_;
  std::vector<bool> fin1_seen_;
  std::vector<bool> fin2_seen_;
  std::vector<bool> peer_dead_;
  bool fin1_sent_ = false;
  bool fin2_sent_ = false;
  bool drain_complete_ = false;

  std::atomic<bool> arrivals_done_{false};
  std::atomic<bool> stop_{false};
  std::thread dispatcher_;
  std::thread arrival_;
};

}  // namespace dsjoin::runtime
