// Node daemon: one process hosting one core::Node of the distributed join.
//
// Lifecycle (driven by the coordinator over the control socket):
//
//   bind data listener (ephemeral) -> dial coordinator (retry) -> HELLO
//   -> CONFIG (learn node id, experiment config, peer endpoints)
//   -> form the data mesh -> heartbeat MESHED -> START
//   -> ingest this node's slice of the deterministic arrival schedule
//   -> heartbeat DONE -> DRAIN -> FIN handshake -> METRICS_REPORT -> BYE
//
// The per-node lifecycle itself — frame dispatch, arrival ingestion, the
// two-phase FIN drain and the final NodeReport — lives in core::NodeHost,
// shared with the other engine backends. What remains here is what only a
// real daemon needs: the control-plane conversation and the threading.
//
// Threading. Four threads share the node:
//   * mesh receiver threads (inside MeshTransport) only *enqueue* incoming
//     frames — they never touch the node, so a peer blasting at us can
//     never deadlock against our own blocked sends (the classic TCP
//     full-mesh buffer deadlock);
//   * a dispatcher thread drains that queue into host.deliver under the
//     node mutex;
//   * an arrival thread feeds the local schedule via host.ingest under the
//     same mutex;
//   * the main thread runs the control loop (coordinator messages +
//     heartbeats).
#pragma once

#include <atomic>
#include <cstdint>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "dsjoin/common/status.hpp"
#include "dsjoin/core/node_host.hpp"
#include "dsjoin/net/channel.hpp"
#include "dsjoin/runtime/control.hpp"
#include "dsjoin/runtime/mesh_transport.hpp"

namespace dsjoin::runtime {

struct DaemonOptions {
  net::Endpoint coordinator;
  /// Budget for dialing the coordinator (capped-backoff retry) and for
  /// waiting on CONFIG / START.
  double connect_timeout_s = 20.0;
  /// Replay arrivals in real time (sleep to each tuple's virtual
  /// timestamp) instead of as fast as possible. Keeps a run open long
  /// enough for mid-stream fault injection.
  bool pace = false;
  /// Guard on the FIN handshake; on expiry the daemon reports whatever
  /// results it holds instead of hanging.
  double drain_timeout_s = 20.0;
};

/// Runs one node's full daemon lifecycle. Single-run, like DspSystem.
class NodeDaemon {
 public:
  explicit NodeDaemon(DaemonOptions options) : options_(std::move(options)) {}
  ~NodeDaemon();

  /// Blocks until the run completes (BYE) or fails. A dead *peer* is not a
  /// failure — the daemon degrades and still reports; a dead coordinator
  /// or an unformable mesh is.
  common::Status run();

  net::NodeId node_id() const noexcept { return node_id_; }

 private:
  /// One ordered unit of data-plane input: every logical frame of one
  /// decoded wire record (in send order), or a peer-death marker queued by
  /// the mesh after the peer's last frame. Enqueuing whole records keeps
  /// queue traffic and dispatcher lock acquisitions per record, not per
  /// frame.
  struct QueueItem {
    bool peer_down = false;
    net::NodeId peer = 0;
    std::vector<net::Frame> frames;
  };

  common::Status handshake(net::MsgSocket& control, ConfigMsg* out);
  void dispatcher_loop();
  void arrival_loop();
  void enqueue(QueueItem item);
  void send_heartbeat(net::MsgSocket& control, DaemonState state);
  void stop_threads();

  DaemonOptions options_;
  net::NodeId node_id_ = 0;
  std::uint32_t nodes_ = 0;
  core::SystemConfig config_;
  double heartbeat_period_s_ = 0.2;

  std::unique_ptr<MeshTransport> mesh_;
  std::unique_ptr<core::NodeHost> host_;

  // Serializes node access between the arrival and dispatcher threads.
  std::mutex node_mutex_;

  // Frame queue (mesh receivers -> dispatcher).
  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<QueueItem> queue_;
  bool queue_stopped_ = false;

  std::atomic<bool> arrivals_done_{false};
  std::atomic<bool> stop_{false};
  std::thread dispatcher_;
  std::thread arrival_;
};

}  // namespace dsjoin::runtime
