// The experiment engine's backend seam.
//
// run_experiment(config, options) executes one experiment on the chosen
// backplane and returns the unified core::ExperimentResult:
//
//   * Backend::kSim — the deterministic WAN simulator (core::DspSystem):
//     virtual time, modeled links, bit-identical runs. What every figure
//     uses by default.
//   * Backend::kTcpInprocess — every node in this process over the
//     loopback TcpTransport, drained by the shared two-phase FIN state
//     machine. Real sockets, one address space.
//   * Backend::kMultiprocess — one forked child process per node, each
//     running the full NodeDaemon lifecycle against an in-process
//     Coordinator: the complete control plane, mesh, drain and wire-level
//     metrics path, launched from a single call.
//
// All three produce their numbers through the same core helpers
// (aggregate_node_reports / verify_against_schedule /
// finalize_derived_metrics), so a figure's epsilon means the same thing
// whichever backplane computed it.
#pragma once

#include "dsjoin/core/config.hpp"
#include "dsjoin/core/experiment.hpp"

namespace dsjoin::runtime {

struct EngineOptions {
  core::Backend backend = core::Backend::kSim;
  /// Recompute the arrival schedule and oracle for epsilon / false-pair
  /// accounting on the socket backends (the simulator's in-run oracle is
  /// governed by config.oracle_enabled).
  bool verify = true;
};

/// Runs one experiment on the chosen backend. Superset of
/// core::run_experiment(config), which is the kSim case.
core::ExperimentResult run_experiment(const core::SystemConfig& config,
                                      const EngineOptions& options = {});

}  // namespace dsjoin::runtime
