#include "dsjoin/runtime/coordinator.hpp"

#include <algorithm>
#include <stdexcept>

#include "dsjoin/common/log.hpp"
#include "dsjoin/common/strformat.hpp"
#include "dsjoin/core/metrics.hpp"
#include "dsjoin/runtime/schedule.hpp"

namespace dsjoin::runtime {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point then) {
  return std::chrono::duration<double>(Clock::now() - then).count();
}

bool at_least(DaemonState state, DaemonState floor) {
  return static_cast<std::uint8_t>(state) >= static_cast<std::uint8_t>(floor);
}

}  // namespace

Coordinator::Coordinator(CoordinatorOptions options)
    : options_(std::move(options)) {
  if (options_.config.nodes < 2) {
    throw std::invalid_argument("a distributed join needs at least 2 nodes");
  }
  if (options_.config.nodes > 255) {
    // stream::Tuple serializes the origin node as one byte.
    throw std::invalid_argument("the wire format addresses at most 255 nodes");
  }
  auto listener = net::tcp_listen(options_.port, 64);
  if (!listener) {
    throw std::runtime_error("coordinator listen: " +
                             listener.status().message());
  }
  auto port = net::bound_port(listener.value().get());
  if (!port) {
    throw std::runtime_error("coordinator port: " + port.status().message());
  }
  listener_ = std::move(listener).value();
  port_ = port.value();
}

std::string Coordinator::admit(std::vector<Member>* members) {
  const auto deadline =
      Clock::now() + std::chrono::duration<double>(options_.admit_timeout_s);
  while (members->size() < options_.config.nodes) {
    const double left =
        std::chrono::duration<double>(deadline - Clock::now()).count();
    if (left <= 0.0) {
      return common::str_format("admitted %zu of %u daemons before timeout",
                                members->size(), options_.config.nodes);
    }
    auto fd = net::tcp_accept(listener_.get(), left);
    if (!fd) return "accept: " + fd.status().message();
    net::MsgSocket control(std::move(fd).value());
    // The daemon speaks first; a socket that does not HELLO promptly is a
    // stray connection, not a member.
    auto message = control.recv_msg(5.0);
    if (!message) {
      DSJOIN_LOG_WARN("coordinator: connection without HELLO dropped");
      continue;
    }
    if (static_cast<ControlType>(message.value().type) != ControlType::kHello) {
      DSJOIN_LOG_WARN("coordinator: first message was not HELLO; dropped");
      continue;
    }
    auto hello = HelloMsg::decode(message.value().payload);
    if (!hello) return "bad HELLO: " + hello.status().message();
    if (hello.value().protocol != kProtocolVersion) {
      // Fail fast on BOTH sides: tell the daemon why it is being rejected
      // (BYE with a reason payload) instead of letting it block on a CONFIG
      // that will never come, then abort the run.
      const std::string reason =
          common::str_format("protocol mismatch: daemon speaks v%u, we v%u",
                             hello.value().protocol, kProtocolVersion);
      std::vector<std::uint8_t> payload(reason.begin(), reason.end());
      (void)control.send_msg(static_cast<std::uint8_t>(ControlType::kBye),
                             payload);
      control.close();
      return reason;
    }
    Member member;
    member.control = std::move(control);
    member.data_endpoint = hello.value().data_endpoint;
    member.last_heard = Clock::now();
    members->push_back(std::move(member));
    DSJOIN_LOG_INFO("coordinator: admitted node %zu at %s:%u",
                    members->size() - 1,
                    members->back().data_endpoint.host.c_str(),
                    members->back().data_endpoint.port);
  }
  return {};
}

void Coordinator::poll_members(std::vector<Member>* members,
                               bool enforce_heartbeat) {
  for (std::size_t id = 0; id < members->size(); ++id) {
    Member& member = (*members)[id];
    if (!member.alive) continue;
    auto message = member.control.recv_msg(0.01);
    if (!message) {
      if (message.status().code() == common::ErrorCode::kDataLoss) {
        DSJOIN_LOG_WARN("coordinator: node %zu control link lost", id);
        member.alive = false;
        member.control.close();
      } else if (enforce_heartbeat &&
                 seconds_since(member.last_heard) >
                     options_.heartbeat_timeout_s) {
        DSJOIN_LOG_WARN("coordinator: node %zu silent for %.1fs, declared dead",
                        id, seconds_since(member.last_heard));
        member.alive = false;
        member.control.close();
      }
      continue;
    }
    member.last_heard = Clock::now();
    switch (static_cast<ControlType>(message.value().type)) {
      case ControlType::kHeartbeat: {
        auto beat = HeartbeatMsg::decode(message.value().payload);
        if (beat) member.state = beat.value().state;
        break;
      }
      case ControlType::kMetricsReport: {
        auto report = MetricsReportMsg::decode(message.value().payload);
        if (report) {
          member.report = std::move(report).value();
          member.reported = true;
        } else {
          DSJOIN_LOG_WARN("coordinator: node %zu sent a corrupt report: %s",
                          id, report.status().message().c_str());
        }
        break;
      }
      default:
        DSJOIN_LOG_WARN("coordinator: unexpected message type %u from node %zu",
                        message.value().type, id);
        break;
    }
  }
}

RunReport Coordinator::run() {
  RunReport report;
  std::vector<Member> members;
  members.reserve(options_.config.nodes);

  auto fail = [&](std::string why) {
    report.clean = false;
    report.error = std::move(why);
    for (auto& member : members) member.control.close();
    return report;
  };

  if (auto error = admit(&members); !error.empty()) return fail(error);
  report.nodes_admitted = static_cast<std::uint32_t>(members.size());

  // CONFIG: node ids are admission order; every daemon learns all data
  // endpoints so the mesh can form without further coordination.
  ConfigMsg config;
  config.config = options_.config;
  config.heartbeat_period_s = options_.heartbeat_period_s;
  config.mesh_timeout_s = options_.mesh_timeout_s;
  config.peers.reserve(members.size());
  for (const auto& member : members) {
    config.peers.push_back(member.data_endpoint);
  }
  for (std::size_t id = 0; id < members.size(); ++id) {
    config.node_id = static_cast<net::NodeId>(id);
    const auto encoded = config.encode();
    auto status = members[id].control.send_msg(
        static_cast<std::uint8_t>(ControlType::kConfig), encoded);
    if (!status.is_ok()) {
      return fail(common::str_format("CONFIG to node %zu failed: %s", id,
                                     status.message().c_str()));
    }
  }

  // Wait for the full mesh. A death here is fatal: the mesh has a hole no
  // survivor can route around during formation.
  const auto mesh_deadline =
      Clock::now() + std::chrono::duration<double>(options_.mesh_timeout_s +
                                                   options_.admit_timeout_s);
  for (;;) {
    poll_members(&members, /*enforce_heartbeat=*/false);
    const auto meshed =
        std::count_if(members.begin(), members.end(), [](const Member& m) {
          return m.alive && at_least(m.state, DaemonState::kMeshed);
        });
    if (static_cast<std::size_t>(meshed) == members.size()) break;
    const auto dead = std::count_if(members.begin(), members.end(),
                                    [](const Member& m) { return !m.alive; });
    if (dead > 0) return fail("a daemon died while the mesh was forming");
    if (Clock::now() >= mesh_deadline) {
      return fail("mesh formation timed out");
    }
  }
  DSJOIN_LOG_INFO("coordinator: mesh formed, starting the run");

  for (auto& member : members) {
    (void)member.control.send_msg(
        static_cast<std::uint8_t>(ControlType::kStart), {});
  }
  // Socket backends run in wall-clock time; makespan is START -> every
  // live node reported (what the throughput figures divide by).
  const auto started_at = Clock::now();

  // Ingest phase: run until every still-live daemon is DONE. Deaths here
  // degrade, not abort.
  const auto run_deadline =
      Clock::now() + std::chrono::duration<double>(options_.run_timeout_s);
  for (;;) {
    poll_members(&members, /*enforce_heartbeat=*/true);
    const auto live = std::count_if(members.begin(), members.end(),
                                    [](const Member& m) { return m.alive; });
    const auto done =
        std::count_if(members.begin(), members.end(), [](const Member& m) {
          return m.alive && at_least(m.state, DaemonState::kDone);
        });
    if (live == 0 || done == live) break;
    if (Clock::now() >= run_deadline) {
      return fail("run timed out before all live nodes finished ingesting");
    }
  }

  // Drain: every live daemon flushes in flight and reports. The dead list
  // frees survivors from waiting on FIN markers that will never come.
  DrainMsg drain;
  for (std::size_t id = 0; id < members.size(); ++id) {
    if (!members[id].alive) {
      drain.dead_nodes.push_back(static_cast<net::NodeId>(id));
    }
  }
  {
    const auto encoded = drain.encode();
    for (auto& member : members) {
      if (!member.alive) continue;
      (void)member.control.send_msg(
          static_cast<std::uint8_t>(ControlType::kDrain), encoded);
    }
  }
  const auto drain_deadline =
      Clock::now() + std::chrono::duration<double>(options_.drain_timeout_s);
  for (;;) {
    poll_members(&members, /*enforce_heartbeat=*/false);
    const auto pending =
        std::count_if(members.begin(), members.end(), [](const Member& m) {
          return m.alive && !m.reported;
        });
    if (pending == 0) break;
    if (Clock::now() >= drain_deadline) {
      DSJOIN_LOG_WARN("coordinator: %zu nodes never reported; proceeding",
                      static_cast<std::size_t>(pending));
      break;
    }
  }

  for (auto& member : members) {
    if (!member.alive) continue;
    (void)member.control.send_msg(static_cast<std::uint8_t>(ControlType::kBye),
                                  {});
  }
  for (auto& member : members) member.control.close();

  report.clean = true;
  report.makespan_s = seconds_since(started_at);
  finalize(members, &report);
  return report;
}

void Coordinator::finalize(const std::vector<Member>& members,
                           RunReport* report) {
  std::vector<core::NodeReport> node_reports;
  node_reports.reserve(members.size());
  for (std::size_t id = 0; id < members.size(); ++id) {
    const Member& member = members[id];
    if (!member.alive) ++report->nodes_failed;
    if (!member.reported) continue;
    node_reports.push_back(member.report.to_node_report());
  }
  core::aggregate_node_reports(node_reports, report);
  if (options_.verify) {
    core::verify_against_schedule(options_.config, report->pairs, report);
  }
  core::finalize_derived_metrics(report);
}

}  // namespace dsjoin::runtime
