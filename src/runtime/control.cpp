#include "dsjoin/runtime/control.hpp"

namespace dsjoin::runtime {

namespace {

void serialize_traffic(const net::TrafficCounters& traffic,
                       common::BufferWriter& out) {
  for (auto f : traffic.frames_by_kind) out.write_u64(f);
  for (auto b : traffic.bytes_by_kind) out.write_u64(b);
  out.write_u64(traffic.piggyback_bytes);
  out.write_u64(traffic.wire_records);
  out.write_u64(traffic.header_bytes_saved);
}

common::Result<net::TrafficCounters> deserialize_traffic(
    common::BufferReader& in) {
  net::TrafficCounters traffic;
  for (auto& f : traffic.frames_by_kind) {
    auto r = in.read_u64();
    if (!r) return r.status();
    f = r.value();
  }
  for (auto& b : traffic.bytes_by_kind) {
    auto r = in.read_u64();
    if (!r) return r.status();
    b = r.value();
  }
  auto piggyback = in.read_u64();
  if (!piggyback) return piggyback.status();
  traffic.piggyback_bytes = piggyback.value();
  auto records = in.read_u64();
  if (!records) return records.status();
  traffic.wire_records = records.value();
  auto saved = in.read_u64();
  if (!saved) return saved.status();
  traffic.header_bytes_saved = saved.value();
  return traffic;
}

}  // namespace

const char* to_string(ControlType type) noexcept {
  switch (type) {
    case ControlType::kHello: return "HELLO";
    case ControlType::kConfig: return "CONFIG";
    case ControlType::kStart: return "START";
    case ControlType::kHeartbeat: return "HEARTBEAT";
    case ControlType::kMetricsReport: return "METRICS_REPORT";
    case ControlType::kDrain: return "DRAIN";
    case ControlType::kBye: return "BYE";
  }
  return "UNKNOWN";
}

const char* to_string(DaemonState state) noexcept {
  switch (state) {
    case DaemonState::kJoining: return "JOINING";
    case DaemonState::kMeshed: return "MESHED";
    case DaemonState::kRunning: return "RUNNING";
    case DaemonState::kDone: return "DONE";
    case DaemonState::kDraining: return "DRAINING";
  }
  return "UNKNOWN";
}

void serialize_endpoint(const net::Endpoint& endpoint,
                        common::BufferWriter& out) {
  out.write_string(endpoint.host);
  out.write_u16(endpoint.port);
}

common::Result<net::Endpoint> deserialize_endpoint(common::BufferReader& in) {
  net::Endpoint endpoint;
  auto host = in.read_string();
  if (!host) return host.status();
  auto port = in.read_u16();
  if (!port) return port.status();
  endpoint.host = std::move(host).value();
  endpoint.port = port.value();
  return endpoint;
}

std::vector<std::uint8_t> HelloMsg::encode() const {
  common::BufferWriter out(32);
  out.write_u32(protocol);
  serialize_endpoint(data_endpoint, out);
  return std::move(out).take();
}

common::Result<HelloMsg> HelloMsg::decode(std::span<const std::uint8_t> bytes) {
  common::BufferReader in(bytes);
  HelloMsg msg;
  auto protocol = in.read_u32();
  if (!protocol) return protocol.status();
  msg.protocol = protocol.value();
  auto endpoint = deserialize_endpoint(in);
  if (!endpoint) return endpoint.status();
  msg.data_endpoint = std::move(endpoint).value();
  return msg;
}

std::vector<std::uint8_t> ConfigMsg::encode() const {
  common::BufferWriter out(512);
  out.write_u32(node_id);
  core::serialize_config(config, out);
  out.write_u32(static_cast<std::uint32_t>(peers.size()));
  for (const auto& peer : peers) serialize_endpoint(peer, out);
  out.write_f64(heartbeat_period_s);
  out.write_f64(mesh_timeout_s);
  return std::move(out).take();
}

common::Result<ConfigMsg> ConfigMsg::decode(
    std::span<const std::uint8_t> bytes) {
  common::BufferReader in(bytes);
  ConfigMsg msg;
  auto node_id = in.read_u32();
  if (!node_id) return node_id.status();
  msg.node_id = node_id.value();
  auto config = core::deserialize_config(in);
  if (!config) return config.status();
  msg.config = std::move(config).value();
  auto count = in.read_u32();
  if (!count) return count.status();
  if (count.value() > 1024) {
    return common::Status(common::ErrorCode::kDataLoss,
                          "implausible peer count");
  }
  msg.peers.reserve(count.value());
  for (std::uint32_t i = 0; i < count.value(); ++i) {
    auto endpoint = deserialize_endpoint(in);
    if (!endpoint) return endpoint.status();
    msg.peers.push_back(std::move(endpoint).value());
  }
  auto heartbeat = in.read_f64();
  if (!heartbeat) return heartbeat.status();
  msg.heartbeat_period_s = heartbeat.value();
  auto mesh_timeout = in.read_f64();
  if (!mesh_timeout) return mesh_timeout.status();
  msg.mesh_timeout_s = mesh_timeout.value();
  return msg;
}

std::vector<std::uint8_t> HeartbeatMsg::encode() const {
  common::BufferWriter out(24);
  out.write_u32(node_id);
  out.write_u8(static_cast<std::uint8_t>(state));
  out.write_u64(local_tuples);
  out.write_u64(pairs_discovered);
  return std::move(out).take();
}

common::Result<HeartbeatMsg> HeartbeatMsg::decode(
    std::span<const std::uint8_t> bytes) {
  common::BufferReader in(bytes);
  HeartbeatMsg msg;
  auto node_id = in.read_u32();
  if (!node_id) return node_id.status();
  msg.node_id = node_id.value();
  auto state = in.read_u8();
  if (!state) return state.status();
  if (state.value() > static_cast<std::uint8_t>(DaemonState::kDraining)) {
    return common::Status(common::ErrorCode::kDataLoss, "bad daemon state");
  }
  msg.state = static_cast<DaemonState>(state.value());
  auto local = in.read_u64();
  if (!local) return local.status();
  msg.local_tuples = local.value();
  auto pairs = in.read_u64();
  if (!pairs) return pairs.status();
  msg.pairs_discovered = pairs.value();
  return msg;
}

MetricsReportMsg MetricsReportMsg::from_node_report(core::NodeReport report) {
  MetricsReportMsg msg;
  msg.node_id = report.node_id;
  msg.local_tuples = report.local_tuples;
  msg.received_tuples = report.received_tuples;
  msg.decode_failures = report.decode_failures;
  msg.late_summaries = report.late_summaries;
  msg.predicted_missed_mass = report.predicted_missed_mass;
  msg.predicted_total_mass = report.predicted_total_mass;
  msg.traffic = report.traffic;
  msg.queries = std::move(report.queries);
  msg.pairs = std::move(report.pairs);
  return msg;
}

core::NodeReport MetricsReportMsg::to_node_report() const {
  core::NodeReport report;
  report.node_id = node_id;
  report.local_tuples = local_tuples;
  report.received_tuples = received_tuples;
  report.decode_failures = decode_failures;
  report.late_summaries = late_summaries;
  report.predicted_missed_mass = predicted_missed_mass;
  report.predicted_total_mass = predicted_total_mass;
  report.traffic = traffic;
  report.queries = queries;
  report.pairs = pairs;
  return report;
}

std::vector<std::uint8_t> MetricsReportMsg::encode() const {
  common::BufferWriter out(64 + pairs.size() * 16);
  out.write_u32(node_id);
  out.write_u64(local_tuples);
  out.write_u64(received_tuples);
  out.write_u64(decode_failures);
  out.write_u64(late_summaries);
  out.write_f64(predicted_missed_mass);
  out.write_f64(predicted_total_mass);
  serialize_traffic(traffic, out);
  // Per-query sections (v6) precede the pair list so the trailing
  // count-vs-remaining check on the pairs stays exact.
  out.write_u32(static_cast<std::uint32_t>(queries.size()));
  for (const auto& query : queries) {
    out.write_u32(query.query_id);
    out.write_u64(query.received_tuples);
    out.write_u64(query.forwarded_tuples);
    out.write_u64(query.result_frames);
    out.write_u64(query.summary_frames);
    out.write_f64(query.predicted_missed_mass);
    out.write_f64(query.predicted_total_mass);
    out.write_u64(query.pairs.size());
    for (const auto& pair : query.pairs) {
      out.write_u64(pair.r_id);
      out.write_u64(pair.s_id);
    }
  }
  out.write_u64(pairs.size());
  for (const auto& pair : pairs) {
    out.write_u64(pair.r_id);
    out.write_u64(pair.s_id);
  }
  return std::move(out).take();
}

common::Result<MetricsReportMsg> MetricsReportMsg::decode(
    std::span<const std::uint8_t> bytes) {
  common::BufferReader in(bytes);
  MetricsReportMsg msg;
  auto node_id = in.read_u32();
  if (!node_id) return node_id.status();
  msg.node_id = node_id.value();
  auto local = in.read_u64();
  if (!local) return local.status();
  msg.local_tuples = local.value();
  auto received = in.read_u64();
  if (!received) return received.status();
  msg.received_tuples = received.value();
  auto failures = in.read_u64();
  if (!failures) return failures.status();
  msg.decode_failures = failures.value();
  auto late = in.read_u64();
  if (!late) return late.status();
  msg.late_summaries = late.value();
  auto missed = in.read_f64();
  if (!missed) return missed.status();
  msg.predicted_missed_mass = missed.value();
  auto total = in.read_f64();
  if (!total) return total.status();
  msg.predicted_total_mass = total.value();
  auto traffic = deserialize_traffic(in);
  if (!traffic) return traffic.status();
  msg.traffic = traffic.value();
  auto query_count = in.read_u32();
  if (!query_count) return query_count.status();
  if (query_count.value() > 64) {
    return common::Status(common::ErrorCode::kDataLoss,
                          "implausible query section count");
  }
  msg.queries.reserve(query_count.value());
  for (std::uint32_t q = 0; q < query_count.value(); ++q) {
    core::QueryNodeReport slice;
    auto query_id = in.read_u32();
    if (!query_id) return query_id.status();
    slice.query_id = query_id.value();
    auto q_received = in.read_u64();
    if (!q_received) return q_received.status();
    slice.received_tuples = q_received.value();
    auto q_forwarded = in.read_u64();
    if (!q_forwarded) return q_forwarded.status();
    slice.forwarded_tuples = q_forwarded.value();
    auto q_results = in.read_u64();
    if (!q_results) return q_results.status();
    slice.result_frames = q_results.value();
    auto q_summaries = in.read_u64();
    if (!q_summaries) return q_summaries.status();
    slice.summary_frames = q_summaries.value();
    auto q_missed = in.read_f64();
    if (!q_missed) return q_missed.status();
    slice.predicted_missed_mass = q_missed.value();
    auto q_total = in.read_f64();
    if (!q_total) return q_total.status();
    slice.predicted_total_mass = q_total.value();
    auto pair_count = in.read_u64();
    if (!pair_count) return pair_count.status();
    if (pair_count.value() * 16 > in.remaining()) {
      return common::Status(common::ErrorCode::kDataLoss,
                            "query pair count exceeds payload size");
    }
    slice.pairs.reserve(pair_count.value());
    for (std::uint64_t i = 0; i < pair_count.value(); ++i) {
      auto r_id = in.read_u64();
      if (!r_id) return r_id.status();
      auto s_id = in.read_u64();
      if (!s_id) return s_id.status();
      slice.pairs.push_back({r_id.value(), s_id.value()});
    }
    msg.queries.push_back(std::move(slice));
  }
  auto count = in.read_u64();
  if (!count) return count.status();
  if (count.value() * 16 != in.remaining()) {
    return common::Status(common::ErrorCode::kDataLoss,
                          "pair count mismatches payload size");
  }
  msg.pairs.reserve(count.value());
  for (std::uint64_t i = 0; i < count.value(); ++i) {
    auto r_id = in.read_u64();
    if (!r_id) return r_id.status();
    auto s_id = in.read_u64();
    if (!s_id) return s_id.status();
    msg.pairs.push_back({r_id.value(), s_id.value()});
  }
  return msg;
}

std::vector<std::uint8_t> DrainMsg::encode() const {
  common::BufferWriter out(8 + dead_nodes.size() * 4);
  out.write_u32(static_cast<std::uint32_t>(dead_nodes.size()));
  for (auto node : dead_nodes) out.write_u32(node);
  return std::move(out).take();
}

common::Result<DrainMsg> DrainMsg::decode(std::span<const std::uint8_t> bytes) {
  common::BufferReader in(bytes);
  DrainMsg msg;
  auto count = in.read_u32();
  if (!count) return count.status();
  if (count.value() * 4 != in.remaining()) {
    return common::Status(common::ErrorCode::kDataLoss,
                          "dead-node count mismatches payload size");
  }
  msg.dead_nodes.reserve(count.value());
  for (std::uint32_t i = 0; i < count.value(); ++i) {
    auto node = in.read_u32();
    if (!node) return node.status();
    msg.dead_nodes.push_back(node.value());
  }
  return msg;
}

}  // namespace dsjoin::runtime
