#include "dsjoin/runtime/daemon.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>

#include "dsjoin/common/log.hpp"
#include "dsjoin/runtime/schedule.hpp"

namespace dsjoin::runtime {

namespace {

using Clock = std::chrono::steady_clock;

// FIN markers ride the data plane as kControl frames so they are ordered
// against the tuple/result traffic of their link. core::Node ignores
// kControl frames, so even a leaked FIN is harmless.
constexpr std::uint8_t kFinMagic[8] = {'D', 'S', 'J', 'N', '-', 'F', 'I', 'N'};

net::Frame make_fin(net::NodeId from, net::NodeId to, std::uint8_t phase) {
  net::Frame frame;
  frame.from = from;
  frame.to = to;
  frame.kind = net::FrameKind::kControl;
  frame.payload.assign(std::begin(kFinMagic), std::end(kFinMagic));
  frame.payload.push_back(phase);
  return frame;
}

bool is_fin(const net::Frame& frame, std::uint8_t* phase) {
  if (frame.kind != net::FrameKind::kControl) return false;
  if (frame.payload.size() != sizeof(kFinMagic) + 1) return false;
  if (std::memcmp(frame.payload.data(), kFinMagic, sizeof(kFinMagic)) != 0) {
    return false;
  }
  *phase = frame.payload.back();
  return true;
}

}  // namespace

NodeDaemon::~NodeDaemon() { stop_threads(); }

common::Status NodeDaemon::run() {
  // Bind the data listener first so HELLO can advertise a real port.
  auto listener = net::tcp_listen(0, 64);
  if (!listener) return listener.status();
  auto port = net::bound_port(listener.value().get());
  if (!port) return port.status();

  auto control_fd = net::tcp_connect_retry(options_.coordinator,
                                           options_.connect_timeout_s);
  if (!control_fd) return control_fd.status();
  net::MsgSocket control(std::move(control_fd).value());

  HelloMsg hello;
  hello.data_endpoint = net::Endpoint{"127.0.0.1", port.value()};
  {
    const auto encoded = hello.encode();
    auto status = control.send_msg(
        static_cast<std::uint8_t>(ControlType::kHello), encoded);
    if (!status.is_ok()) return status;
  }

  ConfigMsg assignment;
  if (auto status = handshake(control, &assignment); !status.is_ok()) {
    return status;
  }
  node_id_ = assignment.node_id;
  nodes_ = assignment.config.nodes;
  config_ = assignment.config;
  heartbeat_period_s_ = assignment.heartbeat_period_s;
  if (node_id_ >= nodes_ || assignment.peers.size() != nodes_) {
    return common::Status(common::ErrorCode::kInvalidArgument,
                          "coordinator sent an inconsistent assignment");
  }
  DSJOIN_LOG_INFO("daemon: admitted as node %u of %u", node_id_, nodes_);

  fin1_seen_.assign(nodes_, false);
  fin2_seen_.assign(nodes_, false);
  peer_dead_.assign(nodes_, false);
  metrics_.set_node_count(nodes_);

  MeshOptions mesh_options;
  mesh_options.connect_timeout_s = assignment.mesh_timeout_s;
  mesh_ = std::make_unique<MeshTransport>(node_id_, nodes_,
                                          std::move(listener).value(),
                                          assignment.peers, mesh_options);
  mesh_->register_handler(node_id_, [this](net::Frame&& frame) {
    QueueItem item;
    item.frame = std::move(frame);
    enqueue(std::move(item));
  });
  mesh_->set_peer_down([this](net::NodeId peer) {
    QueueItem item;
    item.peer_down = true;
    item.peer = peer;
    enqueue(std::move(item));
  });
  node_ = std::make_unique<core::Node>(config_, node_id_, *mesh_, metrics_);

  if (auto status = mesh_->connect_mesh(); !status.is_ok()) return status;
  dispatcher_ = std::thread([this] { dispatcher_loop(); });

  DaemonState state = DaemonState::kMeshed;
  send_heartbeat(control, state);
  auto last_beat = Clock::now();
  bool reported = false;

  for (;;) {
    auto message = control.recv_msg(0.05);
    if (!message) {
      if (message.status().code() == common::ErrorCode::kDataLoss) {
        stop_threads();
        return common::Status(common::ErrorCode::kUnavailable,
                              "coordinator connection lost");
      }
      // Timeout: nothing from the coordinator right now.
    } else {
      switch (static_cast<ControlType>(message.value().type)) {
        case ControlType::kStart:
          if (state == DaemonState::kMeshed) {
            state = DaemonState::kRunning;
            arrival_ = std::thread([this] { arrival_loop(); });
          }
          break;
        case ControlType::kDrain: {
          auto drain = DrainMsg::decode(message.value().payload);
          if (drain) {
            for (const auto dead : drain.value().dead_nodes) {
              note_peer_dead(dead);
            }
          }
          // Arrivals are finished (the coordinator only drains once every
          // live node reported DONE); make sure ours joined.
          if (arrival_.joinable()) arrival_.join();
          state = DaemonState::kDraining;
          send_heartbeat(control, state);
          {
            std::lock_guard lock(fin_mutex_);
            fin1_sent_ = true;
          }
          send_fin(1);
          {
            std::lock_guard lock(fin_mutex_);
            advance_fin_locked();
          }
          {
            std::unique_lock lock(fin_mutex_);
            const bool flushed = fin_cv_.wait_for(
                lock, std::chrono::duration<double>(options_.drain_timeout_s),
                [this] { return drain_complete_; });
            if (!flushed) {
              DSJOIN_LOG_WARN(
                  "node %u: drain timed out; reporting partial results",
                  node_id_);
            }
          }
          {
            const auto report = build_report();
            const auto encoded = report.encode();
            auto status = control.send_msg(
                static_cast<std::uint8_t>(ControlType::kMetricsReport),
                encoded);
            if (!status.is_ok()) {
              stop_threads();
              return status;
            }
            reported = true;
          }
          break;
        }
        case ControlType::kBye:
          stop_threads();
          if (!reported) {
            return common::Status(common::ErrorCode::kUnavailable,
                                  "coordinator hung up before drain");
          }
          return common::Status::ok();
        default:
          DSJOIN_LOG_WARN("node %u: unexpected control message type %u",
                          node_id_, message.value().type);
          break;
      }
    }

    if (state == DaemonState::kRunning && arrivals_done_.load()) {
      state = DaemonState::kDone;
      send_heartbeat(control, state);
      last_beat = Clock::now();
    }
    const auto now = Clock::now();
    if (std::chrono::duration<double>(now - last_beat).count() >=
        heartbeat_period_s_) {
      send_heartbeat(control, state);
      last_beat = now;
    }
  }
}

common::Status NodeDaemon::handshake(net::MsgSocket& control, ConfigMsg* out) {
  const auto deadline =
      Clock::now() + std::chrono::duration<double>(options_.connect_timeout_s);
  for (;;) {
    const double left =
        std::chrono::duration<double>(deadline - Clock::now()).count();
    if (left <= 0.0) {
      return common::Status(common::ErrorCode::kUnavailable,
                            "timed out waiting for CONFIG");
    }
    auto message = control.recv_msg(std::min(left, 0.2));
    if (!message) {
      if (message.status().code() == common::ErrorCode::kDataLoss) {
        return common::Status(common::ErrorCode::kUnavailable,
                              "coordinator closed during admission");
      }
      continue;
    }
    if (static_cast<ControlType>(message.value().type) != ControlType::kConfig) {
      continue;  // stray message; CONFIG must come first
    }
    auto config = ConfigMsg::decode(message.value().payload);
    if (!config) return config.status();
    *out = std::move(config).value();
    return common::Status::ok();
  }
}

void NodeDaemon::enqueue(QueueItem item) {
  {
    std::lock_guard lock(queue_mutex_);
    if (queue_stopped_) return;
    queue_.push_back(std::move(item));
  }
  queue_cv_.notify_one();
}

void NodeDaemon::dispatcher_loop() {
  for (;;) {
    QueueItem item;
    {
      std::unique_lock lock(queue_mutex_);
      queue_cv_.wait(lock, [this] { return queue_stopped_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopped and drained
      item = std::move(queue_.front());
      queue_.pop_front();
    }
    if (item.peer_down) {
      note_peer_dead(item.peer);
      continue;
    }
    std::uint8_t phase = 0;
    if (is_fin(item.frame, &phase)) {
      handle_fin(item.frame.from, phase);
      continue;
    }
    std::lock_guard lock(node_mutex_);
    node_->on_frame(std::move(item.frame), virtual_now_);
  }
}

void NodeDaemon::arrival_loop() {
  // Regenerate the global schedule from the config (it is a pure function
  // of it) and ingest only this node's slice.
  const auto schedule = ArrivalSchedule::build(config_);
  const auto mine = schedule.for_node(node_id_);
  const auto start = Clock::now();
  for (const auto& tuple : mine) {
    if (stop_.load()) break;
    if (options_.pace) {
      // Sleep toward the tuple's virtual time in short slices so shutdown
      // (or a dead coordinator) interrupts promptly.
      const auto due = start + std::chrono::duration<double>(tuple.timestamp);
      while (!stop_.load()) {
        const auto now = Clock::now();
        if (now >= due) break;
        const auto nap = std::min(std::chrono::duration<double>(due - now),
                                  std::chrono::duration<double>(0.05));
        std::this_thread::sleep_for(nap);
      }
      if (stop_.load()) break;
    }
    std::lock_guard lock(node_mutex_);
    virtual_now_ = tuple.timestamp;
    node_->on_local_tuple(tuple, tuple.timestamp);
    ++arrivals_ingested_;
  }
  arrivals_done_.store(true);
}

void NodeDaemon::handle_fin(net::NodeId peer, std::uint8_t phase) {
  if (peer >= nodes_ || peer == node_id_) return;
  std::lock_guard lock(fin_mutex_);
  if (phase == 1) {
    fin1_seen_[peer] = true;
  } else if (phase == 2) {
    fin2_seen_[peer] = true;
  }
  advance_fin_locked();
}

void NodeDaemon::note_peer_dead(net::NodeId peer) {
  if (peer >= nodes_ || peer == node_id_) return;
  if (mesh_) mesh_->mark_peer_dead(peer);
  std::lock_guard lock(fin_mutex_);
  if (!peer_dead_[peer]) {
    DSJOIN_LOG_INFO("node %u: treating peer %u as dead", node_id_, peer);
    peer_dead_[peer] = true;
  }
  advance_fin_locked();
}

bool NodeDaemon::fin_phase1_complete_locked() const {
  for (net::NodeId peer = 0; peer < nodes_; ++peer) {
    if (peer == node_id_) continue;
    if (!fin1_seen_[peer] && !peer_dead_[peer]) return false;
  }
  return true;
}

bool NodeDaemon::fin_phase2_complete_locked() const {
  for (net::NodeId peer = 0; peer < nodes_; ++peer) {
    if (peer == node_id_) continue;
    if (!fin2_seen_[peer] && !peer_dead_[peer]) return false;
  }
  return true;
}

void NodeDaemon::advance_fin_locked() {
  if (!fin1_sent_) return;
  if (!fin2_sent_ && fin_phase1_complete_locked()) {
    fin2_sent_ = true;
    send_fin(2);
  }
  if (fin2_sent_ && !drain_complete_ && fin_phase2_complete_locked()) {
    drain_complete_ = true;
    fin_cv_.notify_all();
  }
}

void NodeDaemon::send_fin(std::uint8_t phase) {
  for (net::NodeId peer = 0; peer < nodes_; ++peer) {
    if (peer == node_id_) continue;
    // A failed send means the peer just died; its EOF path marks it dead.
    (void)mesh_->send(make_fin(node_id_, peer, phase));
  }
}

void NodeDaemon::send_heartbeat(net::MsgSocket& control, DaemonState state) {
  HeartbeatMsg beat;
  beat.node_id = node_id_;
  beat.state = state;
  {
    std::lock_guard lock(node_mutex_);
    beat.local_tuples = arrivals_ingested_;
    beat.pairs_discovered = metrics_.distinct_pairs();
  }
  const auto encoded = beat.encode();
  (void)control.send_msg(static_cast<std::uint8_t>(ControlType::kHeartbeat),
                         encoded);
}

MetricsReportMsg NodeDaemon::build_report() {
  MetricsReportMsg report;
  report.node_id = node_id_;
  std::lock_guard lock(node_mutex_);
  report.local_tuples = node_->local_tuples();
  report.received_tuples = node_->received_tuples();
  report.decode_failures = node_->decode_failures();
  report.traffic = mesh_->stats_snapshot();
  report.pairs = metrics_.pairs();
  return report;
}

void NodeDaemon::stop_threads() {
  stop_.store(true);
  if (arrival_.joinable()) arrival_.join();
  if (mesh_) mesh_->shutdown();
  {
    std::lock_guard lock(queue_mutex_);
    queue_stopped_ = true;
  }
  queue_cv_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
}

}  // namespace dsjoin::runtime
