#include "dsjoin/runtime/daemon.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <span>
#include <string>

#include "dsjoin/common/log.hpp"
#include "dsjoin/runtime/schedule.hpp"

namespace dsjoin::runtime {

namespace {
using Clock = std::chrono::steady_clock;
}  // namespace

NodeDaemon::~NodeDaemon() { stop_threads(); }

common::Status NodeDaemon::run() {
  // Bind the data listener first so HELLO can advertise a real port.
  auto listener = net::tcp_listen(0, 64);
  if (!listener) return listener.status();
  auto port = net::bound_port(listener.value().get());
  if (!port) return port.status();

  auto control_fd = net::tcp_connect_retry(options_.coordinator,
                                           options_.connect_timeout_s);
  if (!control_fd) return control_fd.status();
  net::MsgSocket control(std::move(control_fd).value());

  HelloMsg hello;
  hello.data_endpoint = net::Endpoint{"127.0.0.1", port.value()};
  {
    const auto encoded = hello.encode();
    auto status = control.send_msg(
        static_cast<std::uint8_t>(ControlType::kHello), encoded);
    if (!status.is_ok()) return status;
  }

  ConfigMsg assignment;
  if (auto status = handshake(control, &assignment); !status.is_ok()) {
    return status;
  }
  node_id_ = assignment.node_id;
  nodes_ = assignment.config.nodes;
  config_ = assignment.config;
  heartbeat_period_s_ = assignment.heartbeat_period_s;
  if (node_id_ >= nodes_ || assignment.peers.size() != nodes_) {
    return common::Status(common::ErrorCode::kInvalidArgument,
                          "coordinator sent an inconsistent assignment");
  }
  DSJOIN_LOG_INFO("daemon: admitted as node %u of %u", node_id_, nodes_);

  MeshOptions mesh_options;
  mesh_options.connect_timeout_s = assignment.mesh_timeout_s;
  mesh_options.coalesce.max_frames = config_.coalesce_frames;
  mesh_options.coalesce.max_bytes = config_.coalesce_bytes;
  mesh_options.coalesce.linger_s = config_.coalesce_linger_s;
  mesh_ = std::make_unique<MeshTransport>(node_id_, nodes_,
                                          std::move(listener).value(),
                                          assignment.peers, mesh_options);
  mesh_->set_batch_handler([this](std::vector<net::Frame>&& frames) {
    QueueItem item;
    item.frames = std::move(frames);
    enqueue(std::move(item));
  });
  mesh_->set_peer_down([this](net::NodeId peer) {
    QueueItem item;
    item.peer_down = true;
    item.peer = peer;
    enqueue(std::move(item));
  });
  host_ = std::make_unique<core::NodeHost>(config_, node_id_, *mesh_);
  host_->set_peer_death_hook(
      [this](net::NodeId peer) { mesh_->mark_peer_dead(peer); });
  if (host_->node().uses_summaries()) {
    host_->enable_summary_watermarks();
  }

  if (auto status = mesh_->connect_mesh(); !status.is_ok()) return status;
  dispatcher_ = std::thread([this] { dispatcher_loop(); });

  DaemonState state = DaemonState::kMeshed;
  send_heartbeat(control, state);
  auto last_beat = Clock::now();
  bool reported = false;

  for (;;) {
    auto message = control.recv_msg(0.05);
    if (!message) {
      if (message.status().code() == common::ErrorCode::kDataLoss) {
        stop_threads();
        return common::Status(common::ErrorCode::kUnavailable,
                              "coordinator connection lost");
      }
      // Timeout: nothing from the coordinator right now.
    } else {
      switch (static_cast<ControlType>(message.value().type)) {
        case ControlType::kStart:
          if (state == DaemonState::kMeshed) {
            state = DaemonState::kRunning;
            arrival_ = std::thread([this] { arrival_loop(); });
          }
          break;
        case ControlType::kDrain: {
          auto drain = DrainMsg::decode(message.value().payload);
          // Arrivals are finished (the coordinator only drains once every
          // live node reported DONE); make sure ours joined.
          if (arrival_.joinable()) arrival_.join();
          state = DaemonState::kDraining;
          send_heartbeat(control, state);
          host_->begin_drain(drain ? std::span<const net::NodeId>(
                                         drain.value().dead_nodes)
                                   : std::span<const net::NodeId>());
          if (!host_->wait_drain(options_.drain_timeout_s)) {
            DSJOIN_LOG_WARN(
                "node %u: drain timed out; reporting partial results",
                node_id_);
          }
          {
            std::lock_guard lock(node_mutex_);
            const auto report = MetricsReportMsg::from_node_report(
                host_->report(mesh_->stats_snapshot()));
            const auto encoded = report.encode();
            auto status = control.send_msg(
                static_cast<std::uint8_t>(ControlType::kMetricsReport),
                encoded);
            if (!status.is_ok()) {
              stop_threads();
              return status;
            }
            reported = true;
          }
          break;
        }
        case ControlType::kBye: {
          stop_threads();
          if (!reported) {
            // A BYE before drain may carry the coordinator's reason (e.g. a
            // protocol-version rejection) — surface it verbatim.
            const auto& payload = message.value().payload;
            const std::string reason(payload.begin(), payload.end());
            return common::Status(
                common::ErrorCode::kUnavailable,
                reason.empty() ? "coordinator hung up before drain" : reason);
          }
          return common::Status::ok();
        }
        default:
          DSJOIN_LOG_WARN("node %u: unexpected control message type %u",
                          node_id_, message.value().type);
          break;
      }
    }

    if (state == DaemonState::kRunning && arrivals_done_.load()) {
      state = DaemonState::kDone;
      send_heartbeat(control, state);
      last_beat = Clock::now();
    }
    const auto now = Clock::now();
    if (std::chrono::duration<double>(now - last_beat).count() >=
        heartbeat_period_s_) {
      send_heartbeat(control, state);
      last_beat = now;
    }
  }
}

common::Status NodeDaemon::handshake(net::MsgSocket& control, ConfigMsg* out) {
  const auto deadline =
      Clock::now() + std::chrono::duration<double>(options_.connect_timeout_s);
  for (;;) {
    const double left =
        std::chrono::duration<double>(deadline - Clock::now()).count();
    if (left <= 0.0) {
      return common::Status(common::ErrorCode::kUnavailable,
                            "timed out waiting for CONFIG");
    }
    auto message = control.recv_msg(std::min(left, 0.2));
    if (!message) {
      if (message.status().code() == common::ErrorCode::kDataLoss) {
        return common::Status(common::ErrorCode::kUnavailable,
                              "coordinator closed during admission");
      }
      continue;
    }
    if (static_cast<ControlType>(message.value().type) == ControlType::kBye) {
      // The coordinator refused admission (protocol-version mismatch or a
      // full cluster); fail fast with its reason instead of timing out.
      const auto& payload = message.value().payload;
      const std::string reason(payload.begin(), payload.end());
      return common::Status(
          common::ErrorCode::kFailedPrecondition,
          reason.empty() ? "coordinator rejected admission" : reason);
    }
    if (static_cast<ControlType>(message.value().type) != ControlType::kConfig) {
      continue;  // stray message; CONFIG must come first
    }
    auto config = ConfigMsg::decode(message.value().payload);
    if (!config) return config.status();
    *out = std::move(config).value();
    return common::Status::ok();
  }
}

void NodeDaemon::enqueue(QueueItem item) {
  {
    std::lock_guard lock(queue_mutex_);
    if (queue_stopped_) return;
    queue_.push_back(std::move(item));
  }
  queue_cv_.notify_one();
}

void NodeDaemon::dispatcher_loop() {
  for (;;) {
    QueueItem item;
    {
      std::unique_lock lock(queue_mutex_);
      queue_cv_.wait(lock, [this] { return queue_stopped_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopped and drained
      item = std::move(queue_.front());
      queue_.pop_front();
    }
    if (item.peer_down) {
      host_->note_peer_dead(item.peer);
      continue;
    }
    std::lock_guard lock(node_mutex_);
    host_->deliver_batch(std::move(item.frames));
  }
}

void NodeDaemon::arrival_loop() {
  // Regenerate the global schedule from the config (it is a pure function
  // of it) and ingest only this node's slice.
  const auto schedule = ArrivalSchedule::build(config_);
  const auto mine = schedule.for_node(node_id_);
  const auto start = Clock::now();

  // Virtual-time summary sync (summary-driven policies; DESIGN.md §12):
  // announce the own arrival clock before waiting on anyone (announce-
  // before-wait keeps the mesh deadlock-free), wait for peer cover before
  // each chunk, and never let a chunk span a visibility epoch boundary.
  const bool sync = host_->node().uses_summaries();
  const double sync_epoch = config_.summary_sync_epoch_s;
  constexpr double kInf = std::numeric_limits<double>::infinity();
  const auto cancelled = [this] { return stop_.load(); };
  if (sync) {
    host_->announce_summary_watermark(mine.empty() ? kInf
                                                   : mine.front().timestamp);
  }
  // `next` = index of the first not-yet-ingested arrival.
  const auto after_chunk = [&](std::size_t next) {
    if (!sync) return;
    if (next < mine.size()) {
      host_->announce_summary_watermark(mine[next].timestamp);
    } else {
      host_->announce_summary_watermark(mine.back().timestamp);
      host_->announce_summary_watermark(kInf);
    }
  };

  if (!options_.pace) {
    // As-fast-as-possible replay: hand the slice to the node in
    // coalesce-sized batches — one lock acquisition and one
    // Node::on_local_batch call per chunk (stop_ is honored between
    // chunks, so shutdown still interrupts promptly).
    const std::size_t chunk =
        std::max<std::size_t>(std::size_t{1}, config_.coalesce_frames);
    std::size_t i = 0;
    while (i < mine.size() && !stop_.load()) {
      std::size_t n = std::min(chunk, mine.size() - i);
      if (sync) {
        const double epoch = std::floor(mine[i].timestamp / sync_epoch);
        std::size_t j = i + 1;
        while (j < i + n &&
               std::floor(mine[j].timestamp / sync_epoch) == epoch) {
          ++j;
        }
        n = j - i;
        // Without node_mutex_: cover frames arrive on the dispatcher.
        host_->await_summary_cover(mine[i].timestamp, 30.0, cancelled);
      }
      {
        std::lock_guard lock(node_mutex_);
        host_->ingest_batch(std::span<const stream::Tuple>(mine.data() + i, n));
      }
      i += n;
      after_chunk(i);
    }
    arrivals_done_.store(true);
    return;
  }
  std::size_t ingested = 0;
  for (const auto& tuple : mine) {
    if (stop_.load()) break;
    // Sleep toward the tuple's virtual time in short slices so shutdown
    // (or a dead coordinator) interrupts promptly.
    const auto due = start + std::chrono::duration<double>(tuple.timestamp);
    while (!stop_.load()) {
      const auto now = Clock::now();
      if (now >= due) break;
      const auto nap = std::min(std::chrono::duration<double>(due - now),
                                std::chrono::duration<double>(0.05));
      std::this_thread::sleep_for(nap);
    }
    if (stop_.load()) break;
    if (sync) host_->await_summary_cover(tuple.timestamp, 30.0, cancelled);
    {
      std::lock_guard lock(node_mutex_);
      host_->ingest(tuple, tuple.timestamp);
    }
    ++ingested;
    after_chunk(ingested);
  }
  arrivals_done_.store(true);
}

void NodeDaemon::send_heartbeat(net::MsgSocket& control, DaemonState state) {
  HeartbeatMsg beat;
  beat.node_id = node_id_;
  beat.state = state;
  if (host_) {
    std::lock_guard lock(node_mutex_);
    beat.local_tuples = host_->arrivals_ingested();
    beat.pairs_discovered = host_->pairs_discovered();
  }
  const auto encoded = beat.encode();
  (void)control.send_msg(static_cast<std::uint8_t>(ControlType::kHeartbeat),
                         encoded);
}

void NodeDaemon::stop_threads() {
  stop_.store(true);
  if (arrival_.joinable()) arrival_.join();
  if (mesh_) mesh_->shutdown();
  {
    std::lock_guard lock(queue_mutex_);
    queue_stopped_ = true;
  }
  queue_cv_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
}

}  // namespace dsjoin::runtime
