#include "dsjoin/stream/window.hpp"

#include <algorithm>
#include <cassert>

namespace dsjoin::stream {

namespace {

// First insert into a bucket reserves a few slots so the 1 -> 2 -> 4
// growth reallocations never happen for the typical short bucket.
void bucket_push(std::vector<StoredTuple>& bucket, const Tuple& tuple) {
  if (bucket.capacity() == 0) bucket.reserve(4);
  bucket.push_back(StoredTuple{tuple.id, tuple.timestamp, tuple.origin});
}

}  // namespace

void TupleStore::insert(const Tuple& tuple) {
  bucket_push(by_key_[tuple.key], tuple);
  eviction_.push_back(HeapEntry{tuple.timestamp, tuple.key, tuple.id});
  std::push_heap(eviction_.begin(), eviction_.end(), std::greater<>{});
  if (tuple.timestamp > max_timestamp_) max_timestamp_ = tuple.timestamp;
  ++size_;
}

void TupleStore::insert_batch(std::span<const Tuple> tuples) {
  if (tuples.empty()) return;
  eviction_.reserve(eviction_.size() + tuples.size());
  // Arrivals are usually in (nearly) timestamp order. An element at or
  // above every timestamp already in the heap can be appended as a leaf
  // with no sift at all — its parent is necessarily <= it. Fall back to
  // per-element sift-ups on the first out-of-order element (the appended
  // prefix is a valid heap, so push_heap continues correctly), or to one
  // O(m) heapify when the disordered remainder rivals the heap in size.
  // Either way the heap's internal layout is unobservable: eviction
  // removes tuples by unique id, and bucket contents do not depend on the
  // order equal-timestamp entries pop.
  std::size_t i = 0;
  for (; i < tuples.size() && tuples[i].timestamp >= max_timestamp_; ++i) {
    const Tuple& tuple = tuples[i];
    bucket_push(by_key_[tuple.key], tuple);
    eviction_.push_back(HeapEntry{tuple.timestamp, tuple.key, tuple.id});
    max_timestamp_ = tuple.timestamp;
  }
  if (i < tuples.size()) {
    const bool bulk = tuples.size() - i >= eviction_.size() / 4;
    for (; i < tuples.size(); ++i) {
      const Tuple& tuple = tuples[i];
      bucket_push(by_key_[tuple.key], tuple);
      eviction_.push_back(HeapEntry{tuple.timestamp, tuple.key, tuple.id});
      if (!bulk) {
        std::push_heap(eviction_.begin(), eviction_.end(), std::greater<>{});
      }
      if (tuple.timestamp > max_timestamp_) max_timestamp_ = tuple.timestamp;
    }
    if (bulk) std::make_heap(eviction_.begin(), eviction_.end(), std::greater<>{});
  }
  size_ += tuples.size();
}

void TupleStore::evict_before(double min_timestamp) {
  while (!eviction_.empty() && eviction_.front().timestamp < min_timestamp) {
    const HeapEntry entry = eviction_.front();
    std::pop_heap(eviction_.begin(), eviction_.end(), std::greater<>{});
    eviction_.pop_back();
    auto it = by_key_.find(entry.key);
    assert(it != by_key_.end());
    auto& bucket = it->second;
    // The heap pops in global timestamp order, so the matching element is at
    // (or very near, under out-of-order inserts) the front of its bucket.
    // The erase shifts the tail down one slot, preserving timestamp order
    // (match iteration order is observable through for_each_match).
    for (auto bit = bucket.begin(); bit != bucket.end(); ++bit) {
      if (bit->id == entry.id) {
        bucket.erase(bit);
        break;
      }
    }
    if (bucket.empty()) by_key_.erase(it);
    --size_;
  }
}

std::uint64_t TupleStore::count_matches(std::int64_t key, double center,
                                        double half_width) const {
  const auto it = by_key_.find(key);
  if (it == by_key_.end()) return 0;
  std::uint64_t n = 0;
  for (const auto& st : it->second) {
    if (st.timestamp >= center - half_width && st.timestamp <= center + half_width) {
      ++n;
    }
  }
  return n;
}

void TupleStore::for_each_match(
    std::int64_t key, double center, double half_width,
    const std::function<void(const StoredTuple&)>& fn) const {
  const auto it = by_key_.find(key);
  if (it == by_key_.end()) return;
  for (const auto& st : it->second) {
    if (st.timestamp >= center - half_width && st.timestamp <= center + half_width) {
      fn(st);
    }
  }
}

CountWindow::CountWindow(std::size_t capacity) : capacity_(capacity) {
  assert(capacity >= 1);
}

CountWindow::Evicted CountWindow::insert(const Tuple& tuple) {
  Evicted evicted;
  if (ring_.size() == capacity_) {
    evicted.valid = true;
    evicted.tuple = ring_.front();
    auto it = key_counts_.find(evicted.tuple.key);
    assert(it != key_counts_.end());
    if (--it->second == 0) key_counts_.erase(it);
    ring_.pop_front();
  }
  ring_.push_back(tuple);
  ++key_counts_[tuple.key];
  return evicted;
}

void CountWindow::insert_batch(std::span<const Tuple> tuples,
                               std::vector<Tuple>& evicted) {
  std::size_t i = 0;
  // While the window still has room for the whole remaining batch, no
  // insert can evict: skip the capacity check and front-eviction
  // bookkeeping per tuple.
  const std::size_t room = capacity_ - ring_.size();
  const std::size_t free_fill = std::min(room, tuples.size());
  for (; i < free_fill; ++i) {
    ring_.push_back(tuples[i]);
    ++key_counts_[tuples[i].key];
  }
  for (; i < tuples.size(); ++i) {
    Evicted e = insert(tuples[i]);
    if (e.valid) evicted.push_back(std::move(e.tuple));
  }
}

std::uint64_t CountWindow::count_matches(std::int64_t key) const {
  const auto it = key_counts_.find(key);
  return it == key_counts_.end() ? 0 : it->second;
}

LandmarkWindow::LandmarkWindow(double landmark_time) : landmark_(landmark_time) {}

bool LandmarkWindow::insert(const Tuple& tuple) {
  if (tuple.timestamp < landmark_) return false;
  bucket_push(by_key_[tuple.key], tuple);
  ++size_;
  return true;
}

void LandmarkWindow::reset_landmark(double landmark_time) {
  landmark_ = landmark_time;
  for (auto it = by_key_.begin(); it != by_key_.end();) {
    auto& bucket = it->second;
    const auto before = bucket.size();
    std::erase_if(bucket, [&](const StoredTuple& st) {
      return st.timestamp < landmark_;
    });
    size_ -= before - bucket.size();
    it = bucket.empty() ? by_key_.erase(it) : std::next(it);
  }
}

std::uint64_t LandmarkWindow::count_matches(std::int64_t key) const {
  const auto it = by_key_.find(key);
  return it == by_key_.end() ? 0 : it->second.size();
}

std::vector<ResultPair> reference_join(const std::vector<Tuple>& r_tuples,
                                       const std::vector<Tuple>& s_tuples,
                                       double half_width) {
  std::vector<ResultPair> out;
  for (const Tuple& r : r_tuples) {
    for (const Tuple& s : s_tuples) {
      if (r.key == s.key &&
          s.timestamp >= r.timestamp - half_width &&
          s.timestamp <= r.timestamp + half_width) {
        out.push_back(ResultPair{r.id, s.id});
      }
    }
  }
  return out;
}

}  // namespace dsjoin::stream
