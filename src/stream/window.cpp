#include "dsjoin/stream/window.hpp"

#include <algorithm>
#include <cassert>

#include "dsjoin/common/simd.hpp"

namespace dsjoin::stream {

namespace {

// First insert into a bucket reserves a few slots so the 1 -> 2 -> 4
// growth reallocations never happen for the typical short bucket.
void bucket_push(std::vector<StoredTuple>& bucket, const Tuple& tuple) {
  if (bucket.capacity() == 0) bucket.reserve(4);
  bucket.push_back(StoredTuple{tuple.id, tuple.timestamp, tuple.origin});
}

}  // namespace

void TupleStore::insert(const Tuple& tuple) {
  Partition& part = parts_[part_of(tuple.key)];
  if (part.chunks.empty() || part.chunks.back()->n() == kChunkCap) {
    part.chunks.push_back(std::make_unique<Chunk>());
  }
  Chunk& c = *part.chunks.back();
  if (!c.ts.empty() && tuple.timestamp < c.ts.back()) c.sorted = false;
  c.keys.push_back(tuple.key);
  c.ts.push_back(tuple.timestamp);
  c.ids.push_back(tuple.id);
  c.origins.push_back(tuple.origin);
  if (tuple.timestamp < c.live_min) c.live_min = tuple.timestamp;
  if (tuple.timestamp > c.max_ts) c.max_ts = tuple.timestamp;
  ++size_;
}

void TupleStore::insert_batch(std::span<const Tuple> tuples) {
  for (const Tuple& tuple : tuples) insert(tuple);
}

void TupleStore::evict_before(double min_timestamp) {
  for (Partition& part : parts_) {
    bool any_empty = false;
    for (auto& chunk : part.chunks) {
      Chunk& c = *chunk;
      // live_min is exact over the live region, so a chunk whose oldest
      // live tuple already meets the horizon is skipped without touching
      // its columns — the steady-state cost of eviction is one double
      // compare per chunk, not per tuple.
      if (c.live() == 0 || c.live_min >= min_timestamp) {
        any_empty |= c.live() == 0;
        continue;
      }
      if (c.sorted) {
        // Dead tuples form a prefix: advance the cursor, never move data.
        std::size_t b = c.live_begin;
        const std::size_t n = c.n();
        while (b < n && c.ts[b] < min_timestamp) ++b;
        size_ -= b - c.live_begin;
        c.live_begin = b;
        c.live_min =
            b < n ? c.ts[b] : std::numeric_limits<double>::infinity();
      } else {
        // A late arrival broke the sort: compact the live region in place,
        // preserving arrival order (observable via for_each_match), and
        // recompute the exact bounds while the data streams through.
        std::size_t w = 0;
        double live_min = std::numeric_limits<double>::infinity();
        double max_ts = -std::numeric_limits<double>::infinity();
        double prev = -std::numeric_limits<double>::infinity();
        bool sorted = true;
        for (std::size_t r = c.live_begin; r < c.n(); ++r) {
          if (c.ts[r] < min_timestamp) continue;
          c.keys[w] = c.keys[r];
          c.ts[w] = c.ts[r];
          c.ids[w] = c.ids[r];
          c.origins[w] = c.origins[r];
          if (c.ts[w] < live_min) live_min = c.ts[w];
          if (c.ts[w] > max_ts) max_ts = c.ts[w];
          if (c.ts[w] < prev) sorted = false;
          prev = c.ts[w];
          ++w;
        }
        size_ -= c.live() - w;
        c.keys.resize(w);
        c.ts.resize(w);
        c.ids.resize(w);
        c.origins.resize(w);
        c.live_begin = 0;
        c.live_min = live_min;
        c.max_ts = max_ts;
        c.sorted = sorted;
      }
      any_empty |= c.live() == 0;
    }
    if (any_empty) {
      std::erase_if(part.chunks, [](const std::unique_ptr<Chunk>& c) {
        return c->live() == 0;
      });
    }
  }
}

std::uint64_t TupleStore::count_matches(std::int64_t key, double center,
                                        double half_width) const {
  const double lo = center - half_width;
  const double hi = center + half_width;
  const Partition& part = parts_[part_of(key)];
  std::uint64_t n = 0;
  for (const auto& chunk : part.chunks) {
    const Chunk& c = *chunk;
    if (c.live() == 0 || c.max_ts < lo || c.live_min > hi) continue;
    n += common::simd::match_count_scan(c.keys.data() + c.live_begin,
                                        c.ts.data() + c.live_begin, c.live(),
                                        key, lo, hi);
  }
  return n;
}

void TupleStore::for_each_match(
    std::int64_t key, double center, double half_width,
    const std::function<void(const StoredTuple&)>& fn) const {
  const double lo = center - half_width;
  const double hi = center + half_width;
  const Partition& part = parts_[part_of(key)];
  std::uint32_t idx[kChunkCap];
  for (const auto& chunk : part.chunks) {
    const Chunk& c = *chunk;
    if (c.live() == 0 || c.max_ts < lo || c.live_min > hi) continue;
    const std::size_t m = common::simd::match_collect_scan(
        c.keys.data() + c.live_begin, c.ts.data() + c.live_begin, c.live(),
        key, lo, hi, idx);
    for (std::size_t k = 0; k < m; ++k) {
      const std::size_t j = c.live_begin + idx[k];
      fn(StoredTuple{c.ids[j], c.ts[j], c.origins[j]});
    }
  }
}

void TupleStore::collect_matches(std::int64_t key, double center,
                                 double half_width,
                                 std::vector<StoredTuple>& out) const {
  const double lo = center - half_width;
  const double hi = center + half_width;
  const Partition& part = parts_[part_of(key)];
  std::uint32_t idx[kChunkCap];
  for (const auto& chunk : part.chunks) {
    const Chunk& c = *chunk;
    if (c.live() == 0 || c.max_ts < lo || c.live_min > hi) continue;
    const std::size_t m = common::simd::match_collect_scan(
        c.keys.data() + c.live_begin, c.ts.data() + c.live_begin, c.live(),
        key, lo, hi, idx);
    for (std::size_t k = 0; k < m; ++k) {
      const std::size_t j = c.live_begin + idx[k];
      out.push_back(StoredTuple{c.ids[j], c.ts[j], c.origins[j]});
    }
  }
}

void TupleStore::count_matches_batch(std::span<const Tuple> probes,
                                     double half_width,
                                     std::uint64_t* counts) const {
  for (std::size_t i = 0; i < probes.size(); ++i) {
    counts[i] = count_matches(probes[i].key, probes[i].timestamp, half_width);
  }
}

void TupleStore::for_each_match_batch(
    std::span<const Tuple> probes, double half_width,
    const std::function<void(std::size_t, const StoredTuple&)>& fn) const {
  std::uint32_t idx[kChunkCap];
  for (std::size_t i = 0; i < probes.size(); ++i) {
    const double lo = probes[i].timestamp - half_width;
    const double hi = probes[i].timestamp + half_width;
    const Partition& part = parts_[part_of(probes[i].key)];
    for (const auto& chunk : part.chunks) {
      const Chunk& c = *chunk;
      if (c.live() == 0 || c.max_ts < lo || c.live_min > hi) continue;
      const std::size_t m = common::simd::match_collect_scan(
          c.keys.data() + c.live_begin, c.ts.data() + c.live_begin, c.live(),
          probes[i].key, lo, hi, idx);
      for (std::size_t k = 0; k < m; ++k) {
        const std::size_t j = c.live_begin + idx[k];
        fn(i, StoredTuple{c.ids[j], c.ts[j], c.origins[j]});
      }
    }
  }
}

CountWindow::CountWindow(std::size_t capacity) : capacity_(capacity) {
  assert(capacity >= 1);
}

CountWindow::Evicted CountWindow::insert(const Tuple& tuple) {
  Evicted evicted;
  if (ring_.size() == capacity_) {
    evicted.valid = true;
    evicted.tuple = ring_.front();
    auto it = key_counts_.find(evicted.tuple.key);
    assert(it != key_counts_.end());
    if (--it->second == 0) key_counts_.erase(it);
    ring_.pop_front();
  }
  ring_.push_back(tuple);
  ++key_counts_[tuple.key];
  return evicted;
}

void CountWindow::insert_batch(std::span<const Tuple> tuples,
                               std::vector<Tuple>& evicted) {
  std::size_t i = 0;
  // While the window still has room for the whole remaining batch, no
  // insert can evict: skip the capacity check and front-eviction
  // bookkeeping per tuple.
  const std::size_t room = capacity_ - ring_.size();
  const std::size_t free_fill = std::min(room, tuples.size());
  for (; i < free_fill; ++i) {
    ring_.push_back(tuples[i]);
    ++key_counts_[tuples[i].key];
  }
  for (; i < tuples.size(); ++i) {
    Evicted e = insert(tuples[i]);
    if (e.valid) evicted.push_back(std::move(e.tuple));
  }
}

std::uint64_t CountWindow::count_matches(std::int64_t key) const {
  const auto it = key_counts_.find(key);
  return it == key_counts_.end() ? 0 : it->second;
}

LandmarkWindow::LandmarkWindow(double landmark_time) : landmark_(landmark_time) {}

bool LandmarkWindow::insert(const Tuple& tuple) {
  if (tuple.timestamp < landmark_) return false;
  bucket_push(by_key_[tuple.key], tuple);
  ++size_;
  return true;
}

void LandmarkWindow::reset_landmark(double landmark_time) {
  landmark_ = landmark_time;
  for (auto it = by_key_.begin(); it != by_key_.end();) {
    auto& bucket = it->second;
    const auto before = bucket.size();
    std::erase_if(bucket, [&](const StoredTuple& st) {
      return st.timestamp < landmark_;
    });
    size_ -= before - bucket.size();
    it = bucket.empty() ? by_key_.erase(it) : std::next(it);
  }
}

std::uint64_t LandmarkWindow::count_matches(std::int64_t key) const {
  const auto it = by_key_.find(key);
  return it == by_key_.end() ? 0 : it->second.size();
}

std::vector<ResultPair> reference_join(const std::vector<Tuple>& r_tuples,
                                       const std::vector<Tuple>& s_tuples,
                                       double half_width) {
  std::vector<ResultPair> out;
  for (const Tuple& r : r_tuples) {
    for (const Tuple& s : s_tuples) {
      if (r.key == s.key &&
          s.timestamp >= r.timestamp - half_width &&
          s.timestamp <= r.timestamp + half_width) {
        out.push_back(ResultPair{r.id, s.id});
      }
    }
  }
  return out;
}

}  // namespace dsjoin::stream
