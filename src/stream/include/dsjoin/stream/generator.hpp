// Workload generators (Section 6's datasets, rebuilt synthetically).
//
// The paper evaluates on four workloads: UNI (uniform synthetic), ZIPF
// (Zipfian synthetic, alpha = 0.4, domain [1, 2^19]), FIN (1.8M real
// financial trades) and NWRK (2.2M real packet traces). The real traces are
// gone; DESIGN.md §3 documents the substitution. What the evaluation needs
// from the skewed workloads is three properties the real data had:
//
//  (1) geographic skew — each node's joining attributes concentrate in a
//      node/region-specific part of the domain, so different node pairs
//      contribute very differently to the join (the basis of flow
//      filtering);
//  (2) cross-node temporal correlation — nodes observing the same regional
//      phenomenon (same stocks, same flows) see statistically similar
//      sequences, so the DFT cross-correlation coefficient carries signal;
//  (3) spectral compressibility — attribute sequences ride on smooth latent
//      processes (prices are random-walk-like; flows are bursty), so
//      truncated-DFT reconstruction is accurate (Figures 5/6).
//
// We model (2) and (3) with band-limited latent region processes (sums of
// low-frequency sinusoids with region-specific phases — deterministic in
// virtual time, hence reproducible and cheap), and (1) by assigning nodes to
// regions. UNI has none of the three properties by design: it is the
// paper's worst case.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dsjoin/common/rng.hpp"
#include "dsjoin/common/zipf.hpp"
#include "dsjoin/net/frame.hpp"
#include "dsjoin/stream/tuple.hpp"

namespace dsjoin::stream {

/// Produces joining-attribute values per (node, side, time).
class Workload {
 public:
  virtual ~Workload() = default;

  /// Next key for a tuple arriving at `node` on stream `side` at virtual
  /// time `now`. Deterministic given the construction seed and call order.
  virtual std::int64_t next_key(net::NodeId node, StreamSide side, double now) = 0;

  /// Keys lie in [1, domain()].
  virtual std::int64_t domain() const noexcept = 0;

  virtual const char* name() const noexcept = 0;
};

/// A smooth, band-limited latent process: a mix of low-frequency sinusoids
/// spanning [lo, hi]. Evaluating is stateless in t, so multiple nodes can
/// sample the same process at different (even out-of-order) times — this is
/// how cross-node correlation arises.
class LatentProcess {
 public:
  /// @param lo,hi          output range.
  /// @param base_period_s  period of the slowest component.
  /// @param harmonics      number of sinusoids (>=1).
  LatentProcess(double lo, double hi, double base_period_s, std::size_t harmonics,
                common::Xoshiro256& rng);

  double value(double t) const noexcept;

 private:
  struct Component {
    double amplitude;
    double angular_frequency;
    double phase;
  };
  double lo_, hi_;
  std::vector<Component> components_;
  double norm_;  // sum of amplitudes (for range mapping)
};

/// Shared workload geometry.
struct WorkloadParams {
  std::uint32_t nodes = 4;
  std::uint32_t regions = 2;      ///< nodes are assigned region = node % regions
  std::int64_t domain = 1 << 19;  ///< paper's synthetic key domain
  double locality = 0.85;         ///< P(draw from own region's process)
  /// P(a tuple is background noise: a uniform key over the whole domain,
  /// joining essentially nothing). Real traces carry such cold traffic; it
  /// is what membership-testing policies (DFTT, BLOOM) can decline to
  /// forward. Applies to ZIPF and NWRK.
  double noise = 0.20;
  std::uint64_t seed = 42;
};

/// UNI: iid uniform keys — no skew, no correlation, no compressibility.
/// The provable worst case (Theorems 1-2).
class UniformWorkload final : public Workload {
 public:
  explicit UniformWorkload(const WorkloadParams& params);

  std::int64_t next_key(net::NodeId node, StreamSide side, double now) override;
  std::int64_t domain() const noexcept override { return params_.domain; }
  const char* name() const noexcept override { return "UNI"; }

 private:
  WorkloadParams params_;
  std::vector<common::Xoshiro256> rngs_;  // per (node, side)
};

/// ZIPF: Zipf(alpha)-distributed offsets around a drifting regional center.
/// The marginal key distribution is Zipf-shaped locally in time (the paper's
/// alpha = 0.4); the center's drift provides compressibility and cross-node
/// correlation; regions provide geographic skew.
class ZipfWorkload final : public Workload {
 public:
  /// @param alpha   Zipf exponent of the offset distribution.
  /// @param spread  offset domain: |key - center| < spread.
  ZipfWorkload(const WorkloadParams& params, double alpha = 0.4,
               std::int64_t spread = 64);

  std::int64_t next_key(net::NodeId node, StreamSide side, double now) override;
  std::int64_t domain() const noexcept override { return params_.domain; }
  const char* name() const noexcept override { return "ZIPF"; }

 private:
  WorkloadParams params_;
  common::ZipfDistribution zipf_;
  std::int64_t spread_;
  std::vector<LatentProcess> region_centers_;
  std::vector<common::Xoshiro256> rngs_;
};

/// FIN: synthetic financial feed. Symbols carry smooth latent mid-prices;
/// R tuples are bids (price - spread/2 + jitter), S tuples asks
/// (price + spread/2 - jitter); a join is a bid/ask price cross — the
/// arbitrage scenario of the paper's introduction. Nodes are exchanges:
/// each region trades mostly its own symbol set.
class FinancialWorkload final : public Workload {
 public:
  FinancialWorkload(const WorkloadParams& params, std::uint32_t symbols = 64,
                    std::int64_t half_spread = 1);

  std::int64_t next_key(net::NodeId node, StreamSide side, double now) override;
  std::int64_t domain() const noexcept override { return params_.domain; }
  const char* name() const noexcept override { return "FIN"; }

 private:
  WorkloadParams params_;
  std::uint32_t symbols_;
  std::int64_t half_spread_;
  std::vector<LatentProcess> mid_prices_;   // one per symbol
  common::ZipfDistribution symbol_pop_;     // symbol popularity (skewed)
  std::vector<common::Xoshiro256> rngs_;
};

/// NWRK: synthetic packet traces. Keys are flow identifiers (source hosts);
/// traffic arrives in flow bursts (geometric run lengths) whose host
/// popularity is heavy-tailed around a slowly moving regional hot set —
/// the malicious-packet-tracking scenario of the paper's introduction.
class NetworkWorkload final : public Workload {
 public:
  NetworkWorkload(const WorkloadParams& params, double flow_continue_p = 0.9,
                  double alpha = 1.1, std::int64_t hot_set = 256);

  std::int64_t next_key(net::NodeId node, StreamSide side, double now) override;
  std::int64_t domain() const noexcept override { return params_.domain; }
  const char* name() const noexcept override { return "NWRK"; }

 private:
  WorkloadParams params_;
  double flow_continue_p_;
  common::ZipfDistribution host_pop_;
  std::vector<LatentProcess> region_hot_;
  std::vector<common::Xoshiro256> rngs_;
  std::vector<std::int64_t> current_flow_;  // per (node, side) active flow key
};

/// Factory by workload name ("UNI", "ZIPF", "FIN", "NWRK").
std::unique_ptr<Workload> make_workload(const std::string& name,
                                        const WorkloadParams& params);

/// A stock-price-like series (integer-cent random-walk-plus-cycles values),
/// standing in for the paper's "sample stock data stream" of Figures 5/6.
std::vector<double> generate_stock_series(std::size_t n, std::uint64_t seed);

}  // namespace dsjoin::stream
