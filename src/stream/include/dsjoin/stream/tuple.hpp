// Stream tuples.
//
// The paper joins two streams R and S on an integer attribute (synthetic
// keys in [1, 2^19]; stock prices; packet trace fields). A tuple here
// carries the joining attribute, its origin, and a virtual timestamp; the
// globally unique id lets the metrics collector deduplicate reported result
// pairs.
#pragma once

#include <cstdint>

#include "dsjoin/common/serialize.hpp"
#include "dsjoin/common/status.hpp"
#include "dsjoin/net/frame.hpp"

namespace dsjoin::stream {

/// Which of the two joined streams a tuple belongs to.
enum class StreamSide : std::uint8_t { kR = 0, kS = 1 };

/// The stream a tuple joins against.
constexpr StreamSide opposite(StreamSide side) noexcept {
  return side == StreamSide::kR ? StreamSide::kS : StreamSide::kR;
}

constexpr const char* to_string(StreamSide side) noexcept {
  return side == StreamSide::kR ? "R" : "S";
}

/// One stream element.
struct Tuple {
  std::uint64_t id = 0;        ///< globally unique (assigned by the driver)
  std::int64_t key = 0;        ///< the joining attribute
  double timestamp = 0.0;      ///< virtual arrival time at the origin node
  net::NodeId origin = 0;      ///< node where the tuple first arrived
  StreamSide side = StreamSide::kR;

  /// Wire encoding (26 bytes).
  void serialize(common::BufferWriter& out) const {
    out.write_u64(id);
    out.write_i64(key);
    out.write_f64(timestamp);
    out.write_u8(static_cast<std::uint8_t>(side));
    out.write_u8(static_cast<std::uint8_t>(origin));
  }

  static common::Result<Tuple> deserialize(common::BufferReader& in) {
    Tuple t;
    auto id = in.read_u64();
    if (!id) return id.status();
    auto key = in.read_i64();
    if (!key) return key.status();
    auto ts = in.read_f64();
    if (!ts) return ts.status();
    auto side = in.read_u8();
    if (!side) return side.status();
    auto origin = in.read_u8();
    if (!origin) return origin.status();
    if (side.value() > 1) {
      return common::Status(common::ErrorCode::kDataLoss, "bad stream side");
    }
    t.id = id.value();
    t.key = key.value();
    t.timestamp = ts.value();
    t.side = static_cast<StreamSide>(side.value());
    t.origin = origin.value();
    return t;
  }
};

/// A reported join pair, identified by the two tuple ids (R first).
struct ResultPair {
  std::uint64_t r_id = 0;
  std::uint64_t s_id = 0;

  friend bool operator==(const ResultPair&, const ResultPair&) = default;
};

/// Hash for ResultPair (dedup sets in the metrics collector).
struct ResultPairHash {
  std::size_t operator()(const ResultPair& p) const noexcept {
    // splitmix-style combine of the two ids
    std::uint64_t z = p.r_id * 0x9e3779b97f4a7c15ULL ^ (p.s_id + 0x7f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    return static_cast<std::size_t>(z ^ (z >> 31));
  }
};

}  // namespace dsjoin::stream
