// Sliding-window stores.
//
// Section 2 of the paper defines the window in terms of time duration,
// number of tuples, or a landmark, and notes the approach is agnostic to the
// choice. All three policies are implemented:
//
//  * TupleStore      — timestamp-retained, key-indexed store used by the
//                      distributed join (time-duration semantics with a
//                      retention margin so delayed arrivals still match);
//  * CountWindow     — last-W tuples ring (also the window the DFT sees);
//  * LandmarkWindow  — everything since the most recent landmark.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <span>
#include <unordered_map>
#include <vector>

#include "dsjoin/stream/tuple.hpp"

namespace dsjoin::stream {

/// Minimal record retained per stored tuple (the key is the index key).
struct StoredTuple {
  std::uint64_t id;
  double timestamp;
  net::NodeId origin;
};

/// Key-indexed multiset of tuples with timestamp-based eviction. Inserts may
/// arrive slightly out of timestamp order (network delays); eviction is
/// driven by a timestamp heap, so correctness does not depend on ordering.
class TupleStore {
 public:
  void insert(const Tuple& tuple);

  /// Inserts every tuple in order; state after the call is identical to
  /// calling insert() per tuple. The eviction heap is rebuilt once from the
  /// combined sequence instead of sift-up per element.
  void insert_batch(std::span<const Tuple> tuples);

  /// Drops every tuple with timestamp < min_timestamp.
  void evict_before(double min_timestamp);

  /// Number of stored tuples with the given key and timestamp within
  /// [center - half_width, center + half_width].
  std::uint64_t count_matches(std::int64_t key, double center,
                              double half_width) const;

  /// Invokes fn(StoredTuple) for every match (same predicate as
  /// count_matches).
  void for_each_match(std::int64_t key, double center, double half_width,
                      const std::function<void(const StoredTuple&)>& fn) const;

  std::size_t size() const noexcept { return size_; }

 private:
  struct HeapEntry {
    double timestamp;
    std::int64_t key;
    std::uint64_t id;
    bool operator>(const HeapEntry& o) const noexcept {
      return timestamp > o.timestamp;
    }
  };

  // Min-heap on timestamp, maintained with the <algorithm> heap primitives
  // directly (rather than std::priority_queue) so insert_batch can append
  // the whole batch and re-heapify once.
  //
  // Buckets are vectors, not deques: a libstdc++ deque allocates a 512-byte
  // chunk up front, and under Zipf keys most buckets hold a handful of
  // tuples — the per-key allocation churn dominated this store's profile.
  // Eviction erases near the front; buckets are short enough that the shift
  // is cheaper than the deque's memory traffic.
  std::unordered_map<std::int64_t, std::vector<StoredTuple>> by_key_;
  std::vector<HeapEntry> eviction_;
  // Largest timestamp ever inserted. An arriving element at or above this
  // can be appended to the heap as a leaf with no sift (see insert_batch).
  // Eviction never lowers it — stale-high is conservative, never wrong.
  double max_timestamp_ = -std::numeric_limits<double>::infinity();
  std::size_t size_ = 0;
};

/// Ring of the last W tuples (count-based window).
class CountWindow {
 public:
  explicit CountWindow(std::size_t capacity);

  /// Inserts a tuple; returns the evicted tuple's key if the window was
  /// full (the caller unwinds index structures with it).
  struct Evicted {
    bool valid = false;
    Tuple tuple;
  };
  Evicted insert(const Tuple& tuple);

  /// Inserts every tuple in order, appending each eviction (in eviction
  /// order) to `evicted`. Final window and index state is identical to
  /// calling insert() per tuple; batches that cannot evict skip the
  /// per-tuple capacity bookkeeping entirely.
  void insert_batch(std::span<const Tuple> tuples, std::vector<Tuple>& evicted);

  std::uint64_t count_matches(std::int64_t key) const;
  std::size_t size() const noexcept { return ring_.size(); }
  std::size_t capacity() const noexcept { return capacity_; }
  bool full() const noexcept { return ring_.size() == capacity_; }

 private:
  std::size_t capacity_;
  std::deque<Tuple> ring_;
  std::unordered_map<std::int64_t, std::uint64_t> key_counts_;
};

/// Everything since the last landmark (e.g. "since market open").
class LandmarkWindow {
 public:
  explicit LandmarkWindow(double landmark_time = 0.0);

  /// Inserts if the tuple is at or after the landmark; pre-landmark tuples
  /// are ignored and false is returned.
  bool insert(const Tuple& tuple);

  /// Moves the landmark forward, discarding older tuples.
  void reset_landmark(double landmark_time);

  std::uint64_t count_matches(std::int64_t key) const;
  std::size_t size() const noexcept { return size_; }
  double landmark() const noexcept { return landmark_; }

 private:
  double landmark_;
  std::unordered_map<std::int64_t, std::vector<StoredTuple>> by_key_;
  std::size_t size_ = 0;
};

/// Brute-force reference join: all pairs (r, s) with equal keys and
/// |r.timestamp - s.timestamp| <= half_width. Ground truth for tests.
std::vector<ResultPair> reference_join(const std::vector<Tuple>& r_tuples,
                                       const std::vector<Tuple>& s_tuples,
                                       double half_width);

}  // namespace dsjoin::stream
