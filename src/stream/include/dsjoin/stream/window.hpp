// Sliding-window stores.
//
// Section 2 of the paper defines the window in terms of time duration,
// number of tuples, or a landmark, and notes the approach is agnostic to the
// choice. All three policies are implemented:
//
//  * TupleStore      — timestamp-retained, key-indexed store used by the
//                      distributed join (time-duration semantics with a
//                      retention margin so delayed arrivals still match);
//  * CountWindow     — last-W tuples ring (also the window the DFT sees);
//  * LandmarkWindow  — everything since the most recent landmark.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "dsjoin/stream/tuple.hpp"

namespace dsjoin::stream {

/// Minimal record retained per stored tuple (the key is the index key).
struct StoredTuple {
  std::uint64_t id;
  double timestamp;
  net::NodeId origin;
};

/// Hash-partitioned, columnar multiset of tuples with timestamp-based
/// eviction (DESIGN.md section 16). Keys hash to one of kPartitions
/// partitions; each partition is a list of SoA chunks (parallel key /
/// timestamp / id / origin columns, appended in arrival order). Probes scan
/// a partition's chunk columns linearly with the common::simd match-scan
/// kernels; eviction advances a dead-prefix cursor on time-sorted chunks
/// (the common case) and compacts a chunk in place — order-preserving —
/// only when a late arrival broke its sort.
///
/// Observable semantics are identical to the PR 1 per-key bucket store:
/// inserts may arrive out of timestamp order, evict_before(t) drops exactly
/// the tuples with timestamp < t present at the call, and for_each_match
/// visits matches in per-key insertion order.
class TupleStore {
 public:
  TupleStore() = default;
  TupleStore(TupleStore&&) = default;
  TupleStore& operator=(TupleStore&&) = default;

  void insert(const Tuple& tuple);

  /// Inserts every tuple in order; state after the call is identical to
  /// calling insert() per tuple (appends are the only mutation, so this is
  /// literally that loop).
  void insert_batch(std::span<const Tuple> tuples);

  /// Drops every tuple with timestamp < min_timestamp.
  void evict_before(double min_timestamp);

  /// Number of stored tuples with the given key and timestamp within
  /// [center - half_width, center + half_width].
  std::uint64_t count_matches(std::int64_t key, double center,
                              double half_width) const;

  /// Invokes fn(StoredTuple) for every match (same predicate as
  /// count_matches), in per-key insertion order.
  void for_each_match(std::int64_t key, double center, double half_width,
                      const std::function<void(const StoredTuple&)>& fn) const;

  /// Appends every match to `out` — same predicate and order as
  /// for_each_match, without the per-match indirect call.
  void collect_matches(std::int64_t key, double center, double half_width,
                       std::vector<StoredTuple>& out) const;

  /// counts[i] = count_matches(probes[i].key, probes[i].timestamp,
  /// half_width) for every probe, in one pass over the store API.
  void count_matches_batch(std::span<const Tuple> probes, double half_width,
                           std::uint64_t* counts) const;

  /// Invokes fn(i, match) for every match of probe i, probes in index
  /// order, matches per probe in for_each_match order. One std::function
  /// dispatch per match, none per probe.
  void for_each_match_batch(
      std::span<const Tuple> probes, double half_width,
      const std::function<void(std::size_t, const StoredTuple&)>& fn) const;

  std::size_t size() const noexcept { return size_; }

 private:
  static constexpr std::size_t kPartitions = 64;
  static constexpr std::size_t kChunkCap = 256;

  // One partition segment: parallel columns over at most kChunkCap tuples
  // in arrival order. Columns grow naturally (no up-front reserve — nodes
  // hold many stores and most stay small). `live_begin` is the evicted
  // prefix length while the chunk is sorted; `live_min` / `max_ts` bound
  // the live timestamps for probe pruning (`max_ts` may go stale-high
  // after prefix eviction — conservative, never wrong); `sorted` records
  // whether appends stayed non-decreasing.
  struct Chunk {
    std::vector<std::int64_t> keys;
    std::vector<double> ts;
    std::vector<std::uint64_t> ids;
    std::vector<net::NodeId> origins;
    std::size_t live_begin = 0;
    double live_min = std::numeric_limits<double>::infinity();
    double max_ts = -std::numeric_limits<double>::infinity();
    bool sorted = true;

    std::size_t n() const noexcept { return keys.size(); }
    std::size_t live() const noexcept { return keys.size() - live_begin; }
  };

  // Chunks in creation order. Appends go to the back chunk; a probe scans
  // the chunk list front to back, which restricted to one key is exactly
  // that key's insertion order (the order the old per-key buckets exposed).
  struct Partition {
    std::vector<std::unique_ptr<Chunk>> chunks;
  };

  // Fibonacci multiplicative hash; top bits select the partition so nearby
  // keys spread instead of clustering in one chunk list.
  static std::size_t part_of(std::int64_t key) noexcept {
    return static_cast<std::size_t>(
        (static_cast<std::uint64_t>(key) * 0x9E3779B97F4A7C15ull) >> 58);
  }

  std::array<Partition, kPartitions> parts_;
  std::size_t size_ = 0;
};

/// Ring of the last W tuples (count-based window).
class CountWindow {
 public:
  explicit CountWindow(std::size_t capacity);

  /// Inserts a tuple; returns the evicted tuple's key if the window was
  /// full (the caller unwinds index structures with it).
  struct Evicted {
    bool valid = false;
    Tuple tuple;
  };
  Evicted insert(const Tuple& tuple);

  /// Inserts every tuple in order, appending each eviction (in eviction
  /// order) to `evicted`. Final window and index state is identical to
  /// calling insert() per tuple; batches that cannot evict skip the
  /// per-tuple capacity bookkeeping entirely.
  void insert_batch(std::span<const Tuple> tuples, std::vector<Tuple>& evicted);

  std::uint64_t count_matches(std::int64_t key) const;
  std::size_t size() const noexcept { return ring_.size(); }
  std::size_t capacity() const noexcept { return capacity_; }
  bool full() const noexcept { return ring_.size() == capacity_; }

 private:
  std::size_t capacity_;
  std::deque<Tuple> ring_;
  std::unordered_map<std::int64_t, std::uint64_t> key_counts_;
};

/// Everything since the last landmark (e.g. "since market open").
class LandmarkWindow {
 public:
  explicit LandmarkWindow(double landmark_time = 0.0);

  /// Inserts if the tuple is at or after the landmark; pre-landmark tuples
  /// are ignored and false is returned.
  bool insert(const Tuple& tuple);

  /// Moves the landmark forward, discarding older tuples.
  void reset_landmark(double landmark_time);

  std::uint64_t count_matches(std::int64_t key) const;
  std::size_t size() const noexcept { return size_; }
  double landmark() const noexcept { return landmark_; }

 private:
  double landmark_;
  std::unordered_map<std::int64_t, std::vector<StoredTuple>> by_key_;
  std::size_t size_ = 0;
};

/// Brute-force reference join: all pairs (r, s) with equal keys and
/// |r.timestamp - s.timestamp| <= half_width. Ground truth for tests.
std::vector<ResultPair> reference_join(const std::vector<Tuple>& r_tuples,
                                       const std::vector<Tuple>& s_tuples,
                                       double half_width);

}  // namespace dsjoin::stream
