#include "dsjoin/stream/generator.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace dsjoin::stream {

namespace {

std::size_t rng_index(net::NodeId node, StreamSide side) {
  return static_cast<std::size_t>(node) * 2 + static_cast<std::size_t>(side);
}

std::vector<common::Xoshiro256> per_node_side_rngs(std::uint32_t nodes,
                                                   std::uint64_t seed) {
  common::Xoshiro256 root(seed);
  std::vector<common::Xoshiro256> rngs;
  rngs.reserve(static_cast<std::size_t>(nodes) * 2);
  for (std::uint32_t i = 0; i < nodes * 2; ++i) rngs.push_back(root.fork());
  return rngs;
}

std::int64_t clamp_key(std::int64_t key, std::int64_t domain) {
  return std::clamp<std::int64_t>(key, 1, domain);
}

// Timescale notes. Join windows in the experiments are ~10 s half-width and
// sliding-DFT windows span ~40 s of arrivals, so latent processes must
//  (a) drift slowly relative to the join window (else no two tuples ever
//      share a key and the join is empty), and
//  (b) still move visibly within a DFT window (else windows carry no
//      low-frequency energy and spectra degenerate to the jitter floor).
// The periods and ranges below satisfy (a) and (b) at the default arrival
// rates; plateau quantization (NWRK, FIN) gives windows of exact key
// equality even while the latent value creeps.

}  // namespace

LatentProcess::LatentProcess(double lo, double hi, double base_period_s,
                             std::size_t harmonics, common::Xoshiro256& rng)
    : lo_(lo), hi_(hi) {
  assert(harmonics >= 1);
  components_.reserve(harmonics);
  double norm = 0.0;
  for (std::size_t h = 0; h < harmonics; ++h) {
    // Harmonic h runs ~(h+1)x faster with 1/(h+1) the amplitude: a smooth,
    // pink-ish spectrum dominated by the base period. Frequencies are
    // jittered so two independently constructed processes never share an
    // exact harmonic grid (which would make them correlate under lag
    // search).
    Component c;
    c.amplitude = 1.0 / static_cast<double>(h + 1);
    const double freq_jitter = rng.next_double_in(0.85, 1.2);
    c.angular_frequency = 2.0 * std::numbers::pi *
                          static_cast<double>(h + 1) * freq_jitter / base_period_s;
    c.phase = rng.next_double_in(0.0, 2.0 * std::numbers::pi);
    norm += c.amplitude;
    components_.push_back(c);
  }
  norm_ = norm;
}

double LatentProcess::value(double t) const noexcept {
  double acc = 0.0;
  for (const auto& c : components_) {
    acc += c.amplitude * std::sin(c.angular_frequency * t + c.phase);
  }
  // acc in [-norm_, norm_]; map to [lo_, hi_].
  const double unit = (acc / norm_ + 1.0) * 0.5;
  return lo_ + unit * (hi_ - lo_);
}

UniformWorkload::UniformWorkload(const WorkloadParams& params)
    : params_(params), rngs_(per_node_side_rngs(params.nodes, params.seed)) {}

std::int64_t UniformWorkload::next_key(net::NodeId node, StreamSide side,
                                       double /*now*/) {
  auto& rng = rngs_[rng_index(node, side)];
  return rng.next_in(1, params_.domain);
}

ZipfWorkload::ZipfWorkload(const WorkloadParams& params, double alpha,
                           std::int64_t spread)
    : params_(params),
      zipf_(static_cast<std::uint64_t>(spread), alpha),
      spread_(spread),
      rngs_(per_node_side_rngs(params.nodes, params.seed)) {
  if (params.regions == 0) throw std::invalid_argument("regions must be >= 1");
  common::Xoshiro256 latent_rng(params.seed ^ 0xa5a5a5a5ULL);
  region_centers_.reserve(params.regions);
  // Each region owns a disjoint block of the domain (the geographic skew);
  // within its block the hot center drifts slowly over a band of ~16 spreads
  // (slope << spread / join-window).
  const double block =
      static_cast<double>(params.domain) / static_cast<double>(params.regions);
  for (std::uint32_t r = 0; r < params.regions; ++r) {
    const double mid = block * (static_cast<double>(r) + 0.5);
    const double band =
        std::min(block * 0.5, static_cast<double>(16 * spread));
    region_centers_.emplace_back(mid - band / 2, mid + band / 2,
                                 /*base_period_s=*/4000.0, /*harmonics=*/4,
                                 latent_rng);
  }
}

std::int64_t ZipfWorkload::next_key(net::NodeId node, StreamSide side, double now) {
  auto& rng = rngs_[rng_index(node, side)];
  if (rng.next_bool(params_.noise)) {
    return rng.next_in(1, params_.domain);  // cold background tuple
  }
  std::uint32_t region = node % params_.regions;
  if (params_.regions > 1 && !rng.next_bool(params_.locality)) {
    // Occasionally observe a foreign region: the cross-region join residue.
    region = static_cast<std::uint32_t>(rng.next_below(params_.regions));
  }
  // Plateau quantization: the hot center moves in 128-key steps, so keys
  // coincide exactly across nodes within a join window despite the drift.
  constexpr std::int64_t kPlateau = 128;
  const double center = region_centers_[region].value(now);
  const std::int64_t center_q =
      static_cast<std::int64_t>(std::llround(center / static_cast<double>(kPlateau))) *
      kPlateau;
  const auto rank = static_cast<std::int64_t>(zipf_(rng));
  const std::int64_t offset = (rank - 1) * (rng.next_bool(0.5) ? 1 : -1);
  return clamp_key(center_q + offset, params_.domain);
}

FinancialWorkload::FinancialWorkload(const WorkloadParams& params,
                                     std::uint32_t symbols,
                                     std::int64_t half_spread)
    : params_(params), symbols_(symbols), half_spread_(half_spread),
      symbol_pop_(symbols, 1.0),
      rngs_(per_node_side_rngs(params.nodes, params.seed)) {
  if (symbols == 0) throw std::invalid_argument("symbols must be >= 1");
  common::Xoshiro256 latent_rng(params.seed ^ 0x5ee5ee5eULL);
  mid_prices_.reserve(symbols);
  // Each region's symbols trade in one tight price cluster inside the
  // region's block of the domain: a node's window is then unimodal in value
  // (spectrally compressible) while regions stay far apart (geographic
  // skew). The mid drifts very slowly (quotes must coincide within a join
  // window) and is tick-quantized in next_key.
  const std::uint32_t regions = std::max(params.regions, 1u);
  const std::uint32_t per_region = std::max(symbols / regions, 1u);
  const double block =
      static_cast<double>(params.domain) / static_cast<double>(regions);
  for (std::uint32_t s = 0; s < symbols; ++s) {
    const std::uint32_t region = s / per_region % regions;
    const std::uint32_t slot = s % per_region;
    const double cluster_mid = block * (static_cast<double>(region) + 0.5);
    const double spacing = 768.0;
    const double mid = cluster_mid +
                       (static_cast<double>(slot) -
                        static_cast<double>(per_region - 1) / 2.0) *
                           spacing;
    const double range = 384.0;
    mid_prices_.emplace_back(mid - range / 2, mid + range / 2,
                             /*base_period_s=*/30000.0, /*harmonics=*/6,
                             latent_rng);
  }
}

std::int64_t FinancialWorkload::next_key(net::NodeId node, StreamSide side,
                                         double now) {
  auto& rng = rngs_[rng_index(node, side)];
  // Exchanges list mostly regional symbols: the popularity ranking is
  // rotated by region, so region r's hottest symbol differs from region
  // r+1's.
  const std::uint32_t regions = std::max(params_.regions, 1u);
  const std::uint32_t per_region = std::max(symbols_ / regions, 1u);
  std::uint32_t region = node % regions;
  if (regions > 1 && !rng.next_bool(params_.locality)) {
    region = static_cast<std::uint32_t>(rng.next_below(regions));
  }
  const std::uint32_t rank =
      (static_cast<std::uint32_t>(symbol_pop_(rng)) - 1) % per_region;
  const std::uint32_t symbol = (region * per_region + rank) % symbols_;
  // Tick-quantized mid plus a +/-8 jitter; bids sit half_spread below the
  // mid and asks above. A join is a price cross (bid == ask).
  constexpr std::int64_t kTick = 8;
  const double mid = mid_prices_[symbol].value(now);
  const std::int64_t mid_q =
      static_cast<std::int64_t>(std::llround(mid / static_cast<double>(kTick))) *
      kTick;
  const std::int64_t jitter = rng.next_in(-8, 8);
  const std::int64_t price = side == StreamSide::kR
                                 ? mid_q - half_spread_ + jitter
                                 : mid_q + half_spread_ - jitter;
  return clamp_key(price, params_.domain);
}

NetworkWorkload::NetworkWorkload(const WorkloadParams& params,
                                 double flow_continue_p, double alpha,
                                 std::int64_t hot_set)
    : params_(params), flow_continue_p_(flow_continue_p),
      host_pop_(static_cast<std::uint64_t>(hot_set), alpha),
      rngs_(per_node_side_rngs(params.nodes, params.seed)),
      current_flow_(static_cast<std::size_t>(params.nodes) * 2, 0) {
  common::Xoshiro256 latent_rng(params.seed ^ 0x77cc77ccULL);
  region_hot_.reserve(params.regions);
  // The hot host set drifts diurnally across each region's address block;
  // next_key quantizes it to plateaus so flows coincide within join windows.
  const double block =
      static_cast<double>(params.domain) / static_cast<double>(params.regions);
  for (std::uint32_t r = 0; r < params.regions; ++r) {
    const double mid = block * (static_cast<double>(r) + 0.5);
    const double range = std::min(block * 0.5, static_cast<double>(16 * hot_set));
    region_hot_.emplace_back(mid - range / 2, mid + range / 2,
                             /*base_period_s=*/6000.0, /*harmonics=*/3,
                             latent_rng);
  }
}

std::int64_t NetworkWorkload::next_key(net::NodeId node, StreamSide side,
                                       double now) {
  const std::size_t idx = rng_index(node, side);
  auto& rng = rngs_[idx];
  // Packet bursts: continue the active flow with probability p.
  if (current_flow_[idx] != 0 && rng.next_bool(flow_continue_p_)) {
    return current_flow_[idx];
  }
  if (rng.next_bool(params_.noise)) {
    current_flow_[idx] = rng.next_in(1, params_.domain);  // scanner noise
    return current_flow_[idx];
  }
  std::uint32_t region = node % params_.regions;
  if (params_.regions > 1 && !rng.next_bool(params_.locality)) {
    region = static_cast<std::uint32_t>(rng.next_below(params_.regions));
  }
  // Plateau quantization: the hot base moves in 256-address steps, so the
  // same hosts stay hot across a join window even while the latent drifts.
  constexpr std::int64_t kPlateau = 256;
  const double hot = region_hot_[region].value(now);
  const std::int64_t hot_base =
      static_cast<std::int64_t>(std::llround(hot / static_cast<double>(kPlateau))) *
      kPlateau;
  const auto rank = static_cast<std::int64_t>(host_pop_(rng));
  const std::int64_t offset = (rank - 1) * (rng.next_bool(0.5) ? 1 : -1);
  const std::int64_t key = clamp_key(hot_base + offset, params_.domain);
  current_flow_[idx] = key;
  return key;
}

std::unique_ptr<Workload> make_workload(const std::string& name,
                                        const WorkloadParams& params) {
  if (name == "UNI") return std::make_unique<UniformWorkload>(params);
  if (name == "ZIPF") return std::make_unique<ZipfWorkload>(params);
  if (name == "FIN") return std::make_unique<FinancialWorkload>(params);
  if (name == "NWRK") return std::make_unique<NetworkWorkload>(params);
  throw std::invalid_argument("unknown workload: " + name);
}

std::vector<double> generate_stock_series(std::size_t n, std::uint64_t seed) {
  common::Xoshiro256 rng(seed);
  LatentProcess cycles(-40.0, 40.0, static_cast<double>(n) / 3.0, 8, rng);
  std::vector<double> out(n);
  double walk = 10000.0;  // price in cents
  for (std::size_t i = 0; i < n; ++i) {
    // A tick-scale random walk: the 1/f^2 spectrum puts the paper's
    // E[MSE] < 0.25 lossless threshold (Figure 6) near kappa = 256.
    walk += rng.next_gaussian() * 0.065;
    out[i] = std::round(walk + cycles.value(static_cast<double>(i)));
  }
  return out;
}

}  // namespace dsjoin::stream
