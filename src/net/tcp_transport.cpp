#include "dsjoin/net/tcp_transport.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "dsjoin/common/strformat.hpp"

namespace dsjoin::net {

namespace {

[[noreturn]] void fail(const char* what, const std::string& detail) {
  throw std::runtime_error(
      common::str_format("TcpTransport: %s: %s", what, detail.c_str()));
}

[[noreturn]] void fail(const char* what) { fail(what, std::strerror(errno)); }

void put_u32(std::uint8_t* at, std::uint32_t v) { std::memcpy(at, &v, 4); }
std::uint32_t get_u32(const std::uint8_t* at) {
  std::uint32_t v;
  std::memcpy(&v, at, 4);
  return v;
}

}  // namespace

TcpTransport::TcpTransport(std::size_t nodes, std::uint16_t base_port,
                           double link_rate_bytes_per_s,
                           CoalesceOptions coalesce)
    : nodes_(nodes),
      link_rate_bytes_per_s_(link_rate_bytes_per_s),
      coalesce_(coalesce),
      handlers_(nodes),
      batch_handlers_(nodes),
      peer_fds_(nodes),
      send_buffers_(nodes),
      backlog_(nodes),
      ports_(nodes, 0),
      node_totals_(nodes) {
  for (auto& row : peer_fds_) row.resize(nodes);
  for (auto& row : backlog_) row.resize(nodes);
  for (auto& row : send_buffers_) {
    row.reserve(nodes);
    for (std::size_t i = 0; i < nodes; ++i) row.emplace_back(coalesce_);
  }
  send_mutexes_.reserve(nodes);
  for (std::size_t i = 0; i < nodes; ++i) {
    send_mutexes_.push_back(std::make_unique<std::mutex>());
  }

  // Listeners. The preferred port is advisory: a collision with an
  // unrelated process falls back to an ephemeral port rather than failing
  // the run — the mesh below exchanges the real ports in-process anyway.
  std::vector<UniqueFd> listeners(nodes);
  for (std::size_t i = 0; i < nodes; ++i) {
    common::Result<UniqueFd> fd = common::Status(common::ErrorCode::kInternal, "unset");
    if (base_port != 0) {
      fd = tcp_listen(static_cast<std::uint16_t>(base_port + i),
                      static_cast<int>(nodes));
    }
    if (base_port == 0 || !fd) {
      fd = tcp_listen(0, static_cast<int>(nodes));
    }
    if (!fd) fail("listen", fd.status().message());
    auto port = bound_port(fd.value().get());
    if (!port) fail("getsockname", port.status().message());
    ports_[i] = port.value();
    listeners[i] = std::move(fd).value();
  }

  // Mesh: node i dials every j > i; j accepts and learns i's id from a
  // one-u32 hello.
  for (std::size_t i = 0; i < nodes; ++i) {
    for (std::size_t j = i + 1; j < nodes; ++j) {
      auto dialed = tcp_connect(Endpoint{"127.0.0.1", ports_[j]});
      if (!dialed) fail("connect", dialed.status().message());
      UniqueFd fd = std::move(dialed).value();
      std::uint8_t hello[4];
      put_u32(hello, static_cast<std::uint32_t>(i));
      if (!write_all(fd.get(), hello, 4)) fail("hello");

      UniqueFd accepted(::accept(listeners[j].get(), nullptr, nullptr));
      if (!accepted.valid()) fail("accept");
      const int one = 1;
      (void)::setsockopt(accepted.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      std::uint8_t peer_hello[4];
      if (!read_exact(accepted.get(), peer_hello, 4)) fail("hello read");
      const auto dialer = get_u32(peer_hello);
      // One duplex socket serves both directions of the (i, j) pair.
      peer_fds_[i][j] = std::move(fd);
      peer_fds_[j][dialer] = std::move(accepted);
    }
  }

  receivers_.reserve(nodes);
  for (std::size_t i = 0; i < nodes; ++i) {
    receivers_.emplace_back([this, i] { receiver_loop(static_cast<NodeId>(i)); });
  }
}

TcpTransport::~TcpTransport() { shutdown(); }

void TcpTransport::shutdown() {
  if (!running_.exchange(false)) {
    return;
  }
  // Shut the sockets down (without closing — senders may still hold the
  // fds) to unblock poll/recv, then join the receivers.
  for (std::size_t node = 0; node < nodes_; ++node) {
    std::lock_guard lock(*send_mutexes_[node]);
    for (auto& fd : peer_fds_[node]) {
      if (fd.valid()) ::shutdown(fd.get(), SHUT_RDWR);
    }
  }
  for (auto& t : receivers_) {
    if (t.joinable()) t.join();
  }
  // Close under the per-sender locks: a send() racing with shutdown()
  // either writes to a shut-down socket (harmless error) or observes the
  // fd already gone — never a write to a closed/reused descriptor.
  for (std::size_t node = 0; node < nodes_; ++node) {
    std::lock_guard lock(*send_mutexes_[node]);
    for (auto& fd : peer_fds_[node]) fd.reset();
  }
}

void TcpTransport::register_handler(NodeId node, DeliveryHandler handler) {
  std::lock_guard lock(handlers_mutex_);
  handlers_[node] = std::move(handler);
}

void TcpTransport::register_batch_handler(NodeId node,
                                          BatchDeliveryHandler handler) {
  std::lock_guard lock(handlers_mutex_);
  batch_handlers_[node] = std::move(handler);
}

double TcpTransport::drained_bytes(
    LinkBacklog& backlog, std::chrono::steady_clock::time_point now) const {
  if (backlog.last.time_since_epoch().count() != 0) {
    const double elapsed =
        std::chrono::duration<double>(now - backlog.last).count();
    backlog.queued_bytes =
        std::max(0.0, backlog.queued_bytes - elapsed * link_rate_bytes_per_s_);
  }
  backlog.last = now;
  return backlog.queued_bytes;
}

common::Status TcpTransport::send(Frame&& frame) {
  if (frame.from >= nodes_ || frame.to >= nodes_ || frame.from == frame.to) {
    return common::Status(common::ErrorCode::kInvalidArgument, "bad address");
  }
  if (!running_.load(std::memory_order_relaxed)) {
    return common::Status(common::ErrorCode::kUnavailable, "transport stopped");
  }
  {
    std::lock_guard lock(totals_mutex_);
    totals_.record(frame);
  }
  const NodeId from = frame.from;
  const NodeId to = frame.to;
  std::lock_guard lock(*send_mutexes_[from]);
  node_totals_[from].record(frame);
  if (link_rate_bytes_per_s_ > 0.0) {
    auto& backlog = backlog_[from][to];
    drained_bytes(backlog, std::chrono::steady_clock::now());
    backlog.queued_bytes += static_cast<double>(frame.wire_bytes());
  }
  const int fd = peer_fds_[from][to].get();
  if (fd < 0) {
    return common::Status(common::ErrorCode::kUnavailable, "no socket");
  }
  auto& buffer = send_buffers_[from][to];
  if (buffer.push(std::move(frame))) {
    std::uint64_t saved = 0;
    if (!buffer.flush(fd, &saved)) {
      return common::Status(common::ErrorCode::kUnavailable,
                            "peer write failed");
    }
    node_totals_[from].record_flush(saved);
    std::lock_guard tlock(totals_mutex_);
    totals_.record_flush(saved);
  }
  return common::Status::ok();
}

double TcpTransport::send_backlog_seconds(NodeId node) const noexcept {
  if (node >= nodes_ || link_rate_bytes_per_s_ <= 0.0) return 0.0;
  const auto now = std::chrono::steady_clock::now();
  std::lock_guard lock(*send_mutexes_[node]);
  double worst_bytes = 0.0;
  for (auto& backlog : backlog_[node]) {
    worst_bytes = std::max(worst_bytes, drained_bytes(backlog, now));
  }
  return worst_bytes / link_rate_bytes_per_s_;
}

void TcpTransport::receiver_loop(NodeId node) {
  std::vector<pollfd> polled;
  std::vector<NodeId> owners;
  for (NodeId peer = 0; peer < nodes_; ++peer) {
    const auto& fd = peer_fds_[node][peer];
    if (fd.valid()) {
      polled.push_back(pollfd{fd.get(), POLLIN, 0});
      owners.push_back(peer);
    }
  }
  std::vector<Frame> frames;
  std::vector<std::uint8_t> scratch;
  while (running_.load(std::memory_order_relaxed)) {
    const int ready = ::poll(polled.data(), polled.size(), 100 /*ms*/);
    if (ready <= 0) continue;
    for (std::size_t i = 0; i < polled.size(); ++i) {
      if ((polled[i].revents & (POLLIN | POLLHUP)) == 0) continue;
      frames.clear();
      if (!read_wire_frames(polled[i].fd, &frames, &scratch)) {
        polled[i].fd = -1;  // peer gone or corrupt stream; stop polling it
        continue;
      }
      DeliveryHandler handler;
      BatchDeliveryHandler batch_handler;
      {
        std::lock_guard lock(handlers_mutex_);
        handler = handlers_[node];
        batch_handler = batch_handlers_[node];
      }
      if (batch_handler) {
        batch_handler(std::move(frames));
        frames = {};
      } else if (handler) {
        for (Frame& frame : frames) handler(std::move(frame));
      }
    }
  }
}

}  // namespace dsjoin::net
