#include "dsjoin/net/tcp_transport.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "dsjoin/common/strformat.hpp"

namespace dsjoin::net {

namespace {

// Wire format per frame: u32 length | u8 kind | u32 from | u32 to |
// u32 piggyback_bytes | payload.
constexpr std::size_t kHeaderBytes = 4 + 1 + 4 + 4 + 4;

[[noreturn]] void fail(const char* what) {
  throw std::runtime_error(common::str_format("TcpTransport: %s: %s", what,
                                              std::strerror(errno)));
}

bool read_exact(int fd, std::uint8_t* out, std::size_t n) {
  std::size_t done = 0;
  while (done < n) {
    const ssize_t got = ::recv(fd, out + done, n - done, 0);
    if (got <= 0) return false;  // peer closed or error
    done += static_cast<std::size_t>(got);
  }
  return true;
}

bool write_all(int fd, const std::uint8_t* data, std::size_t n) {
  std::size_t done = 0;
  while (done < n) {
    const ssize_t sent = ::send(fd, data + done, n - done, MSG_NOSIGNAL);
    if (sent <= 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<std::size_t>(sent);
  }
  return true;
}

void put_u32(std::uint8_t* at, std::uint32_t v) { std::memcpy(at, &v, 4); }
std::uint32_t get_u32(const std::uint8_t* at) {
  std::uint32_t v;
  std::memcpy(&v, at, 4);
  return v;
}

}  // namespace

void UniqueFd::reset() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

TcpTransport::TcpTransport(std::size_t nodes, std::uint16_t base_port)
    : nodes_(nodes), handlers_(nodes), peer_fds_(nodes) {
  for (auto& row : peer_fds_) row.resize(nodes);
  send_mutexes_.reserve(nodes);
  for (std::size_t i = 0; i < nodes; ++i) {
    send_mutexes_.push_back(std::make_unique<std::mutex>());
  }

  // Listeners: node i on base_port + i.
  std::vector<UniqueFd> listeners(nodes);
  for (std::size_t i = 0; i < nodes; ++i) {
    UniqueFd fd(::socket(AF_INET, SOCK_STREAM, 0));
    if (!fd.valid()) fail("socket");
    const int one = 1;
    (void)::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(base_port + i));
    if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      fail("bind");
    }
    if (::listen(fd.get(), static_cast<int>(nodes)) != 0) fail("listen");
    listeners[i] = std::move(fd);
  }

  // Mesh: node i dials every j > i; j accepts and learns i's id from a
  // one-u32 hello.
  for (std::size_t i = 0; i < nodes; ++i) {
    for (std::size_t j = i + 1; j < nodes; ++j) {
      UniqueFd fd(::socket(AF_INET, SOCK_STREAM, 0));
      if (!fd.valid()) fail("socket");
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
      addr.sin_port = htons(static_cast<std::uint16_t>(base_port + j));
      if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
        fail("connect");
      }
      const int one = 1;
      (void)::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      std::uint8_t hello[4];
      put_u32(hello, static_cast<std::uint32_t>(i));
      if (!write_all(fd.get(), hello, 4)) fail("hello");

      UniqueFd accepted(::accept(listeners[j].get(), nullptr, nullptr));
      if (!accepted.valid()) fail("accept");
      (void)::setsockopt(accepted.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      std::uint8_t peer_hello[4];
      if (!read_exact(accepted.get(), peer_hello, 4)) fail("hello read");
      const auto dialer = get_u32(peer_hello);
      // One duplex socket serves both directions of the (i, j) pair.
      peer_fds_[i][j] = std::move(fd);
      peer_fds_[j][dialer] = std::move(accepted);
    }
  }

  receivers_.reserve(nodes);
  for (std::size_t i = 0; i < nodes; ++i) {
    receivers_.emplace_back([this, i] { receiver_loop(static_cast<NodeId>(i)); });
  }
}

TcpTransport::~TcpTransport() { shutdown(); }

void TcpTransport::shutdown() {
  if (!running_.exchange(false)) {
    return;
  }
  // Shut the sockets down (without closing — senders may still hold the
  // fds) to unblock poll/recv, then join the receivers.
  for (std::size_t node = 0; node < nodes_; ++node) {
    std::lock_guard lock(*send_mutexes_[node]);
    for (auto& fd : peer_fds_[node]) {
      if (fd.valid()) ::shutdown(fd.get(), SHUT_RDWR);
    }
  }
  for (auto& t : receivers_) {
    if (t.joinable()) t.join();
  }
  // Close under the per-sender locks: a send() racing with shutdown()
  // either writes to a shut-down socket (harmless error) or observes the
  // fd already gone — never a write to a closed/reused descriptor.
  for (std::size_t node = 0; node < nodes_; ++node) {
    std::lock_guard lock(*send_mutexes_[node]);
    for (auto& fd : peer_fds_[node]) fd.reset();
  }
}

void TcpTransport::register_handler(NodeId node, DeliveryHandler handler) {
  std::lock_guard lock(handlers_mutex_);
  handlers_[node] = std::move(handler);
}

common::Status TcpTransport::write_frame(int fd, const Frame& frame) {
  std::vector<std::uint8_t> buffer(kHeaderBytes + frame.payload.size());
  put_u32(buffer.data(),
          static_cast<std::uint32_t>(1 + 4 + 4 + 4 + frame.payload.size()));
  buffer[4] = static_cast<std::uint8_t>(frame.kind);
  put_u32(buffer.data() + 5, frame.from);
  put_u32(buffer.data() + 9, frame.to);
  put_u32(buffer.data() + 13, frame.piggyback_bytes);
  std::memcpy(buffer.data() + kHeaderBytes, frame.payload.data(),
              frame.payload.size());
  if (!write_all(fd, buffer.data(), buffer.size())) {
    return common::Status(common::ErrorCode::kUnavailable, "peer write failed");
  }
  return common::Status::ok();
}

common::Status TcpTransport::send(Frame frame) {
  if (frame.from >= nodes_ || frame.to >= nodes_ || frame.from == frame.to) {
    return common::Status(common::ErrorCode::kInvalidArgument, "bad address");
  }
  if (!running_.load(std::memory_order_relaxed)) {
    return common::Status(common::ErrorCode::kUnavailable, "transport stopped");
  }
  {
    std::lock_guard lock(totals_mutex_);
    totals_.record(frame);
  }
  std::lock_guard lock(*send_mutexes_[frame.from]);
  const int fd = peer_fds_[frame.from][frame.to].get();
  if (fd < 0) {
    return common::Status(common::ErrorCode::kUnavailable, "no socket");
  }
  return write_frame(fd, frame);
}

void TcpTransport::receiver_loop(NodeId node) {
  std::vector<pollfd> polled;
  std::vector<NodeId> owners;
  for (NodeId peer = 0; peer < nodes_; ++peer) {
    const auto& fd = peer_fds_[node][peer];
    if (fd.valid()) {
      polled.push_back(pollfd{fd.get(), POLLIN, 0});
      owners.push_back(peer);
    }
  }
  while (running_.load(std::memory_order_relaxed)) {
    const int ready = ::poll(polled.data(), polled.size(), 100 /*ms*/);
    if (ready <= 0) continue;
    for (std::size_t i = 0; i < polled.size(); ++i) {
      if ((polled[i].revents & (POLLIN | POLLHUP)) == 0) continue;
      std::uint8_t len_buf[4];
      if (!read_exact(polled[i].fd, len_buf, 4)) {
        polled[i].fd = -1;  // peer gone; stop polling it
        continue;
      }
      const std::uint32_t body_len = get_u32(len_buf);
      if (body_len < 13 || body_len > (1u << 26)) {
        polled[i].fd = -1;  // corrupt stream
        continue;
      }
      std::vector<std::uint8_t> body(body_len);
      if (!read_exact(polled[i].fd, body.data(), body_len)) {
        polled[i].fd = -1;
        continue;
      }
      Frame frame;
      frame.kind = static_cast<FrameKind>(body[0]);
      frame.from = get_u32(body.data() + 1);
      frame.to = get_u32(body.data() + 5);
      frame.piggyback_bytes = get_u32(body.data() + 9);
      frame.payload.assign(body.begin() + 13, body.end());
      DeliveryHandler handler;
      {
        std::lock_guard lock(handlers_mutex_);
        handler = handlers_[node];
      }
      if (handler) handler(std::move(frame));
    }
  }
}

}  // namespace dsjoin::net
