#include "dsjoin/net/event_queue.hpp"

#include <cassert>
#include <utility>

namespace dsjoin::net {

void EventQueue::schedule_at(SimTime when, Callback fn) {
  assert(when >= now_ && "cannot schedule into the past");
  heap_.push(Event{when < now_ ? now_ : when, next_sequence_++, false,
                   std::move(fn)});
}

void EventQueue::schedule_barrier_at(SimTime when, Callback fn) {
  assert(when >= now_ && "cannot schedule into the past");
  heap_.push(Event{when < now_ ? now_ : when, next_sequence_++, true,
                   std::move(fn)});
}

bool EventQueue::run_one() {
  if (heap_.empty()) return false;
  // priority_queue::top() is const; the callback must be moved out, so copy
  // the handle and pop before invoking (the callback may schedule more).
  Event ev = std::move(const_cast<Event&>(heap_.top()));
  heap_.pop();
  now_ = ev.when;
  ev.fn();
  return true;
}

std::size_t EventQueue::run_until(SimTime limit) {
  std::size_t executed = 0;
  while (!heap_.empty() && heap_.top().when <= limit) {
    run_one();
    ++executed;
  }
  return executed;
}

std::size_t EventQueue::run_all(std::size_t max_events) {
  std::size_t executed = 0;
  while (executed < max_events && run_one()) ++executed;
  return executed;
}

std::size_t EventQueue::run_epoch() {
  if (heap_.empty()) return 0;
  const SimTime when = heap_.top().when;
  std::size_t executed = 0;
  // A leading barrier event is its own epoch; a later one ends the epoch
  // before running.
  if (heap_.top().barrier) {
    run_one();
    return 1;
  }
  while (!heap_.empty() && heap_.top().when == when && !heap_.top().barrier) {
    run_one();
    ++executed;
  }
  return executed;
}

}  // namespace dsjoin::net
