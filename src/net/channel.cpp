#include "dsjoin/net/channel.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "dsjoin/common/strformat.hpp"

namespace dsjoin::net {

namespace {

constexpr std::size_t kFrameHeaderBytes = 4 + 1 + 4 + 4 + 4;
// Sanity cap on any length prefix read off the wire (64 MiB).
constexpr std::uint32_t kMaxBodyBytes = 1u << 26;
// First body byte of a coalesced multi-frame record; single-frame records
// start with a FrameKind (0..3), so the two are unambiguous.
constexpr std::uint8_t kBatchMarker = 0xFF;

common::Status errno_status(const char* what) {
  return common::Status(
      common::ErrorCode::kUnavailable,
      common::str_format("%s: %s", what, std::strerror(errno)));
}

void put_u32(std::uint8_t* at, std::uint32_t v) { std::memcpy(at, &v, 4); }
std::uint32_t get_u32(const std::uint8_t* at) {
  std::uint32_t v;
  std::memcpy(&v, at, 4);
  return v;
}

common::Result<sockaddr_in> make_addr(const Endpoint& endpoint) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(endpoint.port);
  if (::inet_pton(AF_INET, endpoint.host.c_str(), &addr.sin_addr) != 1) {
    return common::Status(common::ErrorCode::kInvalidArgument,
                          "bad IPv4 address: " + endpoint.host);
  }
  return addr;
}

}  // namespace

void UniqueFd::reset() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

common::Result<UniqueFd> tcp_listen(std::uint16_t port, int backlog) {
  UniqueFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return errno_status("socket");
  const int one = 1;
  (void)::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return errno_status("bind");
  }
  if (::listen(fd.get(), backlog) != 0) return errno_status("listen");
  return fd;
}

common::Result<std::uint16_t> bound_port(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return errno_status("getsockname");
  }
  return static_cast<std::uint16_t>(ntohs(addr.sin_port));
}

common::Result<UniqueFd> tcp_accept(int listener_fd, double timeout_s) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_s);
  for (;;) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) {
      return common::Status(common::ErrorCode::kUnavailable,
                            "timed out waiting for a connection");
    }
    const auto remaining =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now);
    pollfd pfd{listener_fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, static_cast<int>(remaining.count()) + 1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return errno_status("poll");
    }
    if (ready == 0) continue;
    UniqueFd fd(::accept(listener_fd, nullptr, nullptr));
    if (!fd.valid()) {
      if (errno == EINTR) continue;
      return errno_status("accept");
    }
    const int one = 1;
    (void)::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return fd;
  }
}

common::Result<UniqueFd> tcp_connect(const Endpoint& endpoint) {
  auto addr = make_addr(endpoint);
  if (!addr) return addr.status();
  UniqueFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return errno_status("socket");
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr.value()),
                sizeof(sockaddr_in)) != 0) {
    return errno_status("connect");
  }
  const int one = 1;
  (void)::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

common::Result<UniqueFd> tcp_connect_retry(const Endpoint& endpoint,
                                           double timeout_s,
                                           double base_delay_s,
                                           double max_delay_s) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_s);
  double delay = base_delay_s;
  for (;;) {
    auto fd = tcp_connect(endpoint);
    if (fd) return fd;
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) {
      return common::Status(
          common::ErrorCode::kUnavailable,
          common::str_format("connect to %s:%u timed out after %.1fs (%s)",
                             endpoint.host.c_str(), endpoint.port, timeout_s,
                             fd.status().message().c_str()));
    }
    auto sleep_for = std::chrono::duration<double>(delay);
    const auto remaining =
        std::chrono::duration_cast<std::chrono::duration<double>>(deadline - now);
    if (sleep_for > remaining) sleep_for = remaining;
    std::this_thread::sleep_for(sleep_for);
    delay = std::min(delay * 2.0, max_delay_s);
  }
}

bool write_all(int fd, const std::uint8_t* data, std::size_t n) {
  std::size_t done = 0;
  while (done < n) {
    const ssize_t sent = ::send(fd, data + done, n - done, MSG_NOSIGNAL);
    if (sent <= 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<std::size_t>(sent);
  }
  return true;
}

bool read_exact(int fd, std::uint8_t* out, std::size_t n) {
  std::size_t done = 0;
  while (done < n) {
    const ssize_t got = ::recv(fd, out + done, n - done, 0);
    if (got <= 0) {
      if (got < 0 && errno == EINTR) continue;
      return false;  // peer closed or error
    }
    done += static_cast<std::size_t>(got);
  }
  return true;
}

std::vector<std::uint8_t> encode_wire_frame(const Frame& frame) {
  std::vector<std::uint8_t> buffer;
  encode_wire_frame(frame, &buffer);
  return buffer;
}

void encode_wire_frame(const Frame& frame, std::vector<std::uint8_t>* out) {
  out->resize(kFrameHeaderBytes + frame.payload.size());
  put_u32(out->data(),
          static_cast<std::uint32_t>(1 + 4 + 4 + 4 + frame.payload.size()));
  (*out)[4] = static_cast<std::uint8_t>(frame.kind);
  put_u32(out->data() + 5, frame.from);
  put_u32(out->data() + 9, frame.to);
  put_u32(out->data() + 13, frame.piggyback_bytes);
  if (!frame.payload.empty()) {
    std::memcpy(out->data() + kFrameHeaderBytes, frame.payload.data(),
                frame.payload.size());
  }
}

std::uint64_t encode_wire_batch(std::span<const Frame> frames,
                                std::vector<std::uint8_t>* out) {
  if (frames.empty()) {
    out->clear();
    return 0;
  }
  if (frames.size() == 1) {
    encode_wire_frame(frames[0], out);
    return 0;
  }
  std::size_t payload_bytes = 0;
  for (const Frame& f : frames) payload_bytes += f.payload.size();
  const std::size_t body_len = 1 + 2 + 4 + 4 + frames.size() * 9 + payload_bytes;
  out->resize(4 + body_len);
  std::uint8_t* at = out->data();
  put_u32(at, static_cast<std::uint32_t>(body_len));
  at[4] = kBatchMarker;
  const std::uint16_t count = static_cast<std::uint16_t>(frames.size());
  std::memcpy(at + 5, &count, 2);
  put_u32(at + 7, frames[0].from);
  put_u32(at + 11, frames[0].to);
  at += 15;
  for (const Frame& f : frames) {
    at[0] = static_cast<std::uint8_t>(f.kind);
    put_u32(at + 1, f.piggyback_bytes);
    put_u32(at + 5, static_cast<std::uint32_t>(f.payload.size()));
    if (!f.payload.empty()) {
      std::memcpy(at + 9, f.payload.data(), f.payload.size());
    }
    at += 9 + f.payload.size();
  }
  // Per-frame records would spend 17 header bytes each; the shared batch
  // header spends 15 + 9 per frame.
  return 8u * frames.size() - 15u;
}

bool read_wire_frame(int fd, Frame* out) {
  std::uint8_t header[4 + 13];
  if (!read_exact(fd, header, 4)) return false;
  const std::uint32_t body_len = get_u32(header);
  if (body_len < 13 || body_len > kMaxBodyBytes) return false;
  if (!read_exact(fd, header + 4, 13)) return false;
  if (header[4] == kBatchMarker) return false;  // coalesced record
  out->kind = static_cast<FrameKind>(header[4]);
  out->from = get_u32(header + 5);
  out->to = get_u32(header + 9);
  out->piggyback_bytes = get_u32(header + 13);
  out->payload.resize(body_len - 13);
  return out->payload.empty() ||
         read_exact(fd, out->payload.data(), out->payload.size());
}

bool read_wire_frames(int fd, std::vector<Frame>* out,
                      std::vector<std::uint8_t>* scratch) {
  std::uint8_t len_buf[4];
  if (!read_exact(fd, len_buf, 4)) return false;
  const std::uint32_t body_len = get_u32(len_buf);
  if (body_len < 13 || body_len > kMaxBodyBytes) return false;
  scratch->resize(body_len);
  if (!read_exact(fd, scratch->data(), body_len)) return false;
  const std::uint8_t* body = scratch->data();
  if (body[0] != kBatchMarker) {  // plain single-frame record
    Frame frame;
    frame.kind = static_cast<FrameKind>(body[0]);
    frame.from = get_u32(body + 1);
    frame.to = get_u32(body + 5);
    frame.piggyback_bytes = get_u32(body + 9);
    frame.payload.assign(body + 13, body + body_len);
    out->push_back(std::move(frame));
    return true;
  }
  if (body_len < 11) return false;  // marker + count + from + to
  std::uint16_t count;
  std::memcpy(&count, body + 1, 2);
  if (count == 0) return false;
  const NodeId from = get_u32(body + 3);
  const NodeId to = get_u32(body + 7);
  std::size_t offset = 11;
  for (std::uint16_t i = 0; i < count; ++i) {
    if (offset + 9 > body_len) return false;
    Frame frame;
    frame.kind = static_cast<FrameKind>(body[offset]);
    frame.from = from;
    frame.to = to;
    frame.piggyback_bytes = get_u32(body + offset + 1);
    const std::uint32_t payload_len = get_u32(body + offset + 5);
    offset += 9;
    if (offset + payload_len > body_len) return false;
    frame.payload.assign(body + offset, body + offset + payload_len);
    offset += payload_len;
    out->push_back(std::move(frame));
  }
  return offset == body_len;
}

SendBuffer::SendBuffer(CoalesceOptions options) : options_(options) {
  if (options_.max_frames == 0) options_.max_frames = 1;
  // The batch record's count field is a u16.
  options_.max_frames = std::min<std::size_t>(options_.max_frames, 0xFFFF);
}

bool SendBuffer::push(Frame&& frame) {
  if (pending_.empty()) oldest_ = std::chrono::steady_clock::now();
  pending_payload_bytes_ += frame.payload.size();
  const bool control = frame.kind == FrameKind::kControl;
  pending_.push_back(std::move(frame));
  if (control) return true;
  if (pending_.size() >= options_.max_frames) return true;
  if (pending_payload_bytes_ >= options_.max_bytes) return true;
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       oldest_)
             .count() >= options_.linger_s;
}

bool SendBuffer::flush(int fd, std::uint64_t* bytes_saved) {
  if (pending_.empty()) return true;
  const std::uint64_t saved = encode_wire_batch(pending_, &scratch_);
  pending_.clear();
  pending_payload_bytes_ = 0;
  if (!write_all(fd, scratch_.data(), scratch_.size())) return false;
  if (bytes_saved != nullptr) *bytes_saved += saved;
  return true;
}

common::Status MsgSocket::send_msg(std::uint8_t type,
                                   std::span<const std::uint8_t> payload) {
  if (!fd_.valid()) {
    return common::Status(common::ErrorCode::kUnavailable, "socket closed");
  }
  std::vector<std::uint8_t> buffer(4 + 1 + payload.size());
  put_u32(buffer.data(), static_cast<std::uint32_t>(1 + payload.size()));
  buffer[4] = type;
  if (!payload.empty()) {
    std::memcpy(buffer.data() + 5, payload.data(), payload.size());
  }
  std::lock_guard lock(*send_mutex_);
  if (!write_all(fd_.get(), buffer.data(), buffer.size())) {
    return common::Status(common::ErrorCode::kDataLoss, "control write failed");
  }
  return common::Status::ok();
}

common::Result<ControlMessage> MsgSocket::recv_msg(double timeout_s) {
  if (!fd_.valid()) {
    return common::Status(common::ErrorCode::kDataLoss, "socket closed");
  }
  pollfd pfd{fd_.get(), POLLIN, 0};
  const int timeout_ms =
      timeout_s < 0 ? -1 : static_cast<int>(timeout_s * 1000.0);
  const int ready = ::poll(&pfd, 1, timeout_ms);
  if (ready == 0) {
    return common::Status(common::ErrorCode::kUnavailable, "recv timeout");
  }
  if (ready < 0) return errno_status("poll");
  std::uint8_t len_buf[4];
  if (!read_exact(fd_.get(), len_buf, 4)) {
    return common::Status(common::ErrorCode::kDataLoss, "peer closed");
  }
  const std::uint32_t body_len = get_u32(len_buf);
  if (body_len < 1 || body_len > kMaxBodyBytes) {
    return common::Status(common::ErrorCode::kDataLoss, "corrupt message length");
  }
  std::vector<std::uint8_t> body(body_len);
  if (!read_exact(fd_.get(), body.data(), body_len)) {
    return common::Status(common::ErrorCode::kDataLoss, "truncated message");
  }
  ControlMessage msg;
  msg.type = body[0];
  msg.payload.assign(body.begin() + 1, body.end());
  return msg;
}

void MsgSocket::close() noexcept {
  if (fd_.valid()) {
    ::shutdown(fd_.get(), SHUT_RDWR);
    fd_.reset();
  }
}

}  // namespace dsjoin::net
