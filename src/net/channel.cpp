#include "dsjoin/net/channel.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "dsjoin/common/strformat.hpp"

namespace dsjoin::net {

namespace {

constexpr std::size_t kFrameHeaderBytes = 4 + 1 + 4 + 4 + 4;
// Sanity cap on any length prefix read off the wire (64 MiB).
constexpr std::uint32_t kMaxBodyBytes = 1u << 26;

common::Status errno_status(const char* what) {
  return common::Status(
      common::ErrorCode::kUnavailable,
      common::str_format("%s: %s", what, std::strerror(errno)));
}

void put_u32(std::uint8_t* at, std::uint32_t v) { std::memcpy(at, &v, 4); }
std::uint32_t get_u32(const std::uint8_t* at) {
  std::uint32_t v;
  std::memcpy(&v, at, 4);
  return v;
}

common::Result<sockaddr_in> make_addr(const Endpoint& endpoint) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(endpoint.port);
  if (::inet_pton(AF_INET, endpoint.host.c_str(), &addr.sin_addr) != 1) {
    return common::Status(common::ErrorCode::kInvalidArgument,
                          "bad IPv4 address: " + endpoint.host);
  }
  return addr;
}

}  // namespace

void UniqueFd::reset() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

common::Result<UniqueFd> tcp_listen(std::uint16_t port, int backlog) {
  UniqueFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return errno_status("socket");
  const int one = 1;
  (void)::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return errno_status("bind");
  }
  if (::listen(fd.get(), backlog) != 0) return errno_status("listen");
  return fd;
}

common::Result<std::uint16_t> bound_port(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return errno_status("getsockname");
  }
  return static_cast<std::uint16_t>(ntohs(addr.sin_port));
}

common::Result<UniqueFd> tcp_accept(int listener_fd, double timeout_s) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_s);
  for (;;) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) {
      return common::Status(common::ErrorCode::kUnavailable,
                            "timed out waiting for a connection");
    }
    const auto remaining =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now);
    pollfd pfd{listener_fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, static_cast<int>(remaining.count()) + 1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return errno_status("poll");
    }
    if (ready == 0) continue;
    UniqueFd fd(::accept(listener_fd, nullptr, nullptr));
    if (!fd.valid()) {
      if (errno == EINTR) continue;
      return errno_status("accept");
    }
    const int one = 1;
    (void)::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return fd;
  }
}

common::Result<UniqueFd> tcp_connect(const Endpoint& endpoint) {
  auto addr = make_addr(endpoint);
  if (!addr) return addr.status();
  UniqueFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return errno_status("socket");
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr.value()),
                sizeof(sockaddr_in)) != 0) {
    return errno_status("connect");
  }
  const int one = 1;
  (void)::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

common::Result<UniqueFd> tcp_connect_retry(const Endpoint& endpoint,
                                           double timeout_s,
                                           double base_delay_s,
                                           double max_delay_s) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_s);
  double delay = base_delay_s;
  for (;;) {
    auto fd = tcp_connect(endpoint);
    if (fd) return fd;
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) {
      return common::Status(
          common::ErrorCode::kUnavailable,
          common::str_format("connect to %s:%u timed out after %.1fs (%s)",
                             endpoint.host.c_str(), endpoint.port, timeout_s,
                             fd.status().message().c_str()));
    }
    auto sleep_for = std::chrono::duration<double>(delay);
    const auto remaining =
        std::chrono::duration_cast<std::chrono::duration<double>>(deadline - now);
    if (sleep_for > remaining) sleep_for = remaining;
    std::this_thread::sleep_for(sleep_for);
    delay = std::min(delay * 2.0, max_delay_s);
  }
}

bool write_all(int fd, const std::uint8_t* data, std::size_t n) {
  std::size_t done = 0;
  while (done < n) {
    const ssize_t sent = ::send(fd, data + done, n - done, MSG_NOSIGNAL);
    if (sent <= 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<std::size_t>(sent);
  }
  return true;
}

bool read_exact(int fd, std::uint8_t* out, std::size_t n) {
  std::size_t done = 0;
  while (done < n) {
    const ssize_t got = ::recv(fd, out + done, n - done, 0);
    if (got <= 0) {
      if (got < 0 && errno == EINTR) continue;
      return false;  // peer closed or error
    }
    done += static_cast<std::size_t>(got);
  }
  return true;
}

std::vector<std::uint8_t> encode_wire_frame(const Frame& frame) {
  std::vector<std::uint8_t> buffer(kFrameHeaderBytes + frame.payload.size());
  put_u32(buffer.data(),
          static_cast<std::uint32_t>(1 + 4 + 4 + 4 + frame.payload.size()));
  buffer[4] = static_cast<std::uint8_t>(frame.kind);
  put_u32(buffer.data() + 5, frame.from);
  put_u32(buffer.data() + 9, frame.to);
  put_u32(buffer.data() + 13, frame.piggyback_bytes);
  if (!frame.payload.empty()) {
    std::memcpy(buffer.data() + kFrameHeaderBytes, frame.payload.data(),
                frame.payload.size());
  }
  return buffer;
}

bool read_wire_frame(int fd, Frame* out) {
  std::uint8_t len_buf[4];
  if (!read_exact(fd, len_buf, 4)) return false;
  const std::uint32_t body_len = get_u32(len_buf);
  if (body_len < 13 || body_len > kMaxBodyBytes) return false;
  std::vector<std::uint8_t> body(body_len);
  if (!read_exact(fd, body.data(), body_len)) return false;
  out->kind = static_cast<FrameKind>(body[0]);
  out->from = get_u32(body.data() + 1);
  out->to = get_u32(body.data() + 5);
  out->piggyback_bytes = get_u32(body.data() + 9);
  out->payload.assign(body.begin() + 13, body.end());
  return true;
}

common::Status MsgSocket::send_msg(std::uint8_t type,
                                   std::span<const std::uint8_t> payload) {
  if (!fd_.valid()) {
    return common::Status(common::ErrorCode::kUnavailable, "socket closed");
  }
  std::vector<std::uint8_t> buffer(4 + 1 + payload.size());
  put_u32(buffer.data(), static_cast<std::uint32_t>(1 + payload.size()));
  buffer[4] = type;
  if (!payload.empty()) {
    std::memcpy(buffer.data() + 5, payload.data(), payload.size());
  }
  std::lock_guard lock(*send_mutex_);
  if (!write_all(fd_.get(), buffer.data(), buffer.size())) {
    return common::Status(common::ErrorCode::kDataLoss, "control write failed");
  }
  return common::Status::ok();
}

common::Result<ControlMessage> MsgSocket::recv_msg(double timeout_s) {
  if (!fd_.valid()) {
    return common::Status(common::ErrorCode::kDataLoss, "socket closed");
  }
  pollfd pfd{fd_.get(), POLLIN, 0};
  const int timeout_ms =
      timeout_s < 0 ? -1 : static_cast<int>(timeout_s * 1000.0);
  const int ready = ::poll(&pfd, 1, timeout_ms);
  if (ready == 0) {
    return common::Status(common::ErrorCode::kUnavailable, "recv timeout");
  }
  if (ready < 0) return errno_status("poll");
  std::uint8_t len_buf[4];
  if (!read_exact(fd_.get(), len_buf, 4)) {
    return common::Status(common::ErrorCode::kDataLoss, "peer closed");
  }
  const std::uint32_t body_len = get_u32(len_buf);
  if (body_len < 1 || body_len > kMaxBodyBytes) {
    return common::Status(common::ErrorCode::kDataLoss, "corrupt message length");
  }
  std::vector<std::uint8_t> body(body_len);
  if (!read_exact(fd_.get(), body.data(), body_len)) {
    return common::Status(common::ErrorCode::kDataLoss, "truncated message");
  }
  ControlMessage msg;
  msg.type = body[0];
  msg.payload.assign(body.begin() + 1, body.end());
  return msg;
}

void MsgSocket::close() noexcept {
  if (fd_.valid()) {
    ::shutdown(fd_.get(), SHUT_RDWR);
    fd_.reset();
  }
}

}  // namespace dsjoin::net
