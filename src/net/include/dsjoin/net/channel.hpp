// TCP plumbing shared by every real-socket component.
//
// The in-process TcpTransport, the multi-process mesh transport and the
// coordinator/daemon control plane all speak the same length-prefixed
// framing over loopback/LAN TCP. This header centralizes the pieces they
// share: RAII descriptors, listen/connect helpers (including capped
// exponential-backoff dialing, needed while a distributed mesh forms and
// peers come up in arbitrary order), the data-plane frame codec, and a
// typed message socket for the control plane.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "dsjoin/common/status.hpp"
#include "dsjoin/net/frame.hpp"

namespace dsjoin::net {

/// RAII file descriptor.
class UniqueFd {
 public:
  UniqueFd() = default;
  explicit UniqueFd(int fd) noexcept : fd_(fd) {}
  ~UniqueFd() { reset(); }
  UniqueFd(UniqueFd&& other) noexcept : fd_(other.release()) {}
  UniqueFd& operator=(UniqueFd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.release();
    }
    return *this;
  }
  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;

  int get() const noexcept { return fd_; }
  bool valid() const noexcept { return fd_ >= 0; }
  int release() noexcept {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void reset() noexcept;

 private:
  int fd_ = -1;
};

/// A dialable TCP address.
struct Endpoint {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;

  friend bool operator==(const Endpoint&, const Endpoint&) = default;
};

/// Binds and listens on IPv4 `port` (0 picks an ephemeral port; read the
/// actual one back with bound_port).
common::Result<UniqueFd> tcp_listen(std::uint16_t port, int backlog);

/// The locally bound port of a socket (after tcp_listen with port 0).
common::Result<std::uint16_t> bound_port(int fd);

/// Accepts one connection within `timeout_s`; kUnavailable on timeout.
common::Result<UniqueFd> tcp_accept(int listener_fd, double timeout_s);

/// One blocking connect attempt (TCP_NODELAY set on success).
common::Result<UniqueFd> tcp_connect(const Endpoint& endpoint);

/// Dials until success or `timeout_s` elapses, sleeping between attempts
/// with capped exponential backoff (base_delay, 2x per failure, capped at
/// max_delay). This is the mesh-formation path: daemons start in arbitrary
/// order, so early dials routinely meet ECONNREFUSED.
common::Result<UniqueFd> tcp_connect_retry(const Endpoint& endpoint,
                                           double timeout_s,
                                           double base_delay_s = 0.05,
                                           double max_delay_s = 1.0);

/// Writes all of `data`, retrying short writes and EINTR. False on error.
bool write_all(int fd, const std::uint8_t* data, std::size_t n);

/// Reads exactly `n` bytes. False on EOF or error.
bool read_exact(int fd, std::uint8_t* out, std::size_t n);

// --- Data-plane frame codec ---
//
// Wire format per single frame: u32 body length | u8 kind | u32 from |
// u32 to | u32 piggyback_bytes | payload. Shared by the in-process
// transport and the multi-process mesh so a frame written by either is
// readable by both.
//
// Coalesced record (many logical frames, one length header): the body
// starts with marker byte 0xFF — unambiguous, since a single frame's
// body starts with its FrameKind (0..3) — followed by
//   u16 count | u32 from | u32 to |
//   count x { u8 kind | u32 piggyback_bytes | u32 payload_len | payload }.
// All frames in a record share one directed link, hence one (from, to).
// Relative to `count` single-frame records the shared header saves
// 8*count - 15 bytes (positive from count = 2 up).

/// Serialized size prefix + body for one frame.
std::vector<std::uint8_t> encode_wire_frame(const Frame& frame);

/// Same encoding into a reused scratch buffer (overwritten, not appended).
void encode_wire_frame(const Frame& frame, std::vector<std::uint8_t>* out);

/// Encodes `frames` (all sharing frames[0]'s from/to) as one coalesced
/// record into `out` (overwritten). A single frame uses the plain
/// single-frame encoding. Returns the header bytes saved vs per-frame
/// records (0 when frames.size() <= 1).
std::uint64_t encode_wire_batch(std::span<const Frame> frames,
                                std::vector<std::uint8_t>* out);

/// Blocking read of one frame. False on EOF, error, or a corrupt length.
/// The caller-provided `out->payload` is reused as the read buffer, so a
/// receive loop that recycles one Frame performs no per-frame allocation
/// at steady state. Rejects coalesced records (use read_wire_frames on
/// links that may carry them).
bool read_wire_frame(int fd, Frame* out);

/// Blocking read of one wire record — single frame or coalesced batch —
/// appending every decoded logical frame to `*out` in order. `*scratch`
/// holds the record body between calls so steady-state reads allocate
/// nothing. False on EOF, error, or a corrupt record.
bool read_wire_frames(int fd, std::vector<Frame>* out,
                      std::vector<std::uint8_t>* scratch);

// --- Frame coalescing ---

/// Flush budgets for a per-peer SendBuffer. A buffer flushes when it holds
/// max_frames frames, its payload bytes reach max_bytes, the oldest
/// pending frame is older than linger_s, or a kControl frame is appended
/// (control frames order the drain protocol, so they must never sit in a
/// buffer). max_frames = 1 degenerates to the per-frame wire path.
struct CoalesceOptions {
  std::size_t max_frames = 1;
  std::size_t max_bytes = 1 << 16;
  double linger_s = 0.005;
};

/// Accumulates frames bound for one directed peer link and writes them as
/// coalesced wire records. Not thread-safe: the owning transport guards
/// each instance with its per-peer send lock.
class SendBuffer {
 public:
  SendBuffer() = default;
  explicit SendBuffer(CoalesceOptions options);

  /// Takes ownership of `frame`. Returns true if the buffer must be
  /// flushed now (a budget tripped or the frame is kControl).
  bool push(Frame&& frame);

  bool empty() const noexcept { return pending_.empty(); }
  std::size_t frame_count() const noexcept { return pending_.size(); }

  /// Encodes all pending frames as one wire record (reusing internal
  /// scratch) and writes it with a single write_all. No-op on an empty
  /// buffer. On success adds the header bytes saved to *bytes_saved and
  /// returns true; false on write error (buffer is cleared either way).
  bool flush(int fd, std::uint64_t* bytes_saved);

 private:
  CoalesceOptions options_;
  std::vector<Frame> pending_;
  std::size_t pending_payload_bytes_ = 0;
  std::chrono::steady_clock::time_point oldest_{};
  std::vector<std::uint8_t> scratch_;
};

// --- Control-plane message socket ---

/// One typed control-plane message (the body encoding is the caller's).
struct ControlMessage {
  std::uint8_t type = 0;
  std::vector<std::uint8_t> payload;
};

/// A connected socket carrying length-prefixed typed messages:
/// u32 length | u8 type | payload. Sends are locked (a daemon's heartbeat
/// and its main loop may share the socket); receives belong to one thread.
/// Movable (the send mutex lives on the heap) — but only while no other
/// thread is using the source.
class MsgSocket {
 public:
  MsgSocket() = default;
  explicit MsgSocket(UniqueFd fd) noexcept : fd_(std::move(fd)) {}
  MsgSocket(MsgSocket&&) = default;
  MsgSocket& operator=(MsgSocket&&) = default;

  bool valid() const noexcept { return fd_.valid(); }
  int fd() const noexcept { return fd_.get(); }

  common::Status send_msg(std::uint8_t type,
                          std::span<const std::uint8_t> payload);

  /// Waits up to `timeout_s` for one message.
  ///   kUnavailable -> timed out (retryable; the peer is simply quiet)
  ///   kDataLoss    -> peer closed the connection or sent garbage
  common::Result<ControlMessage> recv_msg(double timeout_s);

  /// Half-closes and closes the socket; recv on the peer sees EOF.
  void close() noexcept;

 private:
  UniqueFd fd_;
  std::unique_ptr<std::mutex> send_mutex_ = std::make_unique<std::mutex>();
};

}  // namespace dsjoin::net
