// TCP plumbing shared by every real-socket component.
//
// The in-process TcpTransport, the multi-process mesh transport and the
// coordinator/daemon control plane all speak the same length-prefixed
// framing over loopback/LAN TCP. This header centralizes the pieces they
// share: RAII descriptors, listen/connect helpers (including capped
// exponential-backoff dialing, needed while a distributed mesh forms and
// peers come up in arbitrary order), the data-plane frame codec, and a
// typed message socket for the control plane.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "dsjoin/common/status.hpp"
#include "dsjoin/net/frame.hpp"

namespace dsjoin::net {

/// RAII file descriptor.
class UniqueFd {
 public:
  UniqueFd() = default;
  explicit UniqueFd(int fd) noexcept : fd_(fd) {}
  ~UniqueFd() { reset(); }
  UniqueFd(UniqueFd&& other) noexcept : fd_(other.release()) {}
  UniqueFd& operator=(UniqueFd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.release();
    }
    return *this;
  }
  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;

  int get() const noexcept { return fd_; }
  bool valid() const noexcept { return fd_ >= 0; }
  int release() noexcept {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void reset() noexcept;

 private:
  int fd_ = -1;
};

/// A dialable TCP address.
struct Endpoint {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;

  friend bool operator==(const Endpoint&, const Endpoint&) = default;
};

/// Binds and listens on IPv4 `port` (0 picks an ephemeral port; read the
/// actual one back with bound_port).
common::Result<UniqueFd> tcp_listen(std::uint16_t port, int backlog);

/// The locally bound port of a socket (after tcp_listen with port 0).
common::Result<std::uint16_t> bound_port(int fd);

/// Accepts one connection within `timeout_s`; kUnavailable on timeout.
common::Result<UniqueFd> tcp_accept(int listener_fd, double timeout_s);

/// One blocking connect attempt (TCP_NODELAY set on success).
common::Result<UniqueFd> tcp_connect(const Endpoint& endpoint);

/// Dials until success or `timeout_s` elapses, sleeping between attempts
/// with capped exponential backoff (base_delay, 2x per failure, capped at
/// max_delay). This is the mesh-formation path: daemons start in arbitrary
/// order, so early dials routinely meet ECONNREFUSED.
common::Result<UniqueFd> tcp_connect_retry(const Endpoint& endpoint,
                                           double timeout_s,
                                           double base_delay_s = 0.05,
                                           double max_delay_s = 1.0);

/// Writes all of `data`, retrying short writes and EINTR. False on error.
bool write_all(int fd, const std::uint8_t* data, std::size_t n);

/// Reads exactly `n` bytes. False on EOF or error.
bool read_exact(int fd, std::uint8_t* out, std::size_t n);

// --- Data-plane frame codec ---
//
// Wire format per frame: u32 body length | u8 kind | u32 from | u32 to |
// u32 piggyback_bytes | payload. Shared by the in-process transport and
// the multi-process mesh so a frame written by either is readable by both.

/// Serialized size prefix + body for one frame.
std::vector<std::uint8_t> encode_wire_frame(const Frame& frame);

/// Blocking read of one frame. False on EOF, error, or a corrupt length.
bool read_wire_frame(int fd, Frame* out);

// --- Control-plane message socket ---

/// One typed control-plane message (the body encoding is the caller's).
struct ControlMessage {
  std::uint8_t type = 0;
  std::vector<std::uint8_t> payload;
};

/// A connected socket carrying length-prefixed typed messages:
/// u32 length | u8 type | payload. Sends are locked (a daemon's heartbeat
/// and its main loop may share the socket); receives belong to one thread.
/// Movable (the send mutex lives on the heap) — but only while no other
/// thread is using the source.
class MsgSocket {
 public:
  MsgSocket() = default;
  explicit MsgSocket(UniqueFd fd) noexcept : fd_(std::move(fd)) {}
  MsgSocket(MsgSocket&&) = default;
  MsgSocket& operator=(MsgSocket&&) = default;

  bool valid() const noexcept { return fd_.valid(); }
  int fd() const noexcept { return fd_.get(); }

  common::Status send_msg(std::uint8_t type,
                          std::span<const std::uint8_t> payload);

  /// Waits up to `timeout_s` for one message.
  ///   kUnavailable -> timed out (retryable; the peer is simply quiet)
  ///   kDataLoss    -> peer closed the connection or sent garbage
  common::Result<ControlMessage> recv_msg(double timeout_s);

  /// Half-closes and closes the socket; recv on the peer sees EOF.
  void close() noexcept;

 private:
  UniqueFd fd_;
  std::unique_ptr<std::mutex> send_mutex_ = std::make_unique<std::mutex>();
};

}  // namespace dsjoin::net
