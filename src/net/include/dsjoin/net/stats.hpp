// Network traffic accounting.
//
// Every experiment metric that involves communication flows through these
// counters: total frames and bytes by kind, plus the piggybacked-summary
// byte share (Figure 8's numerator).
#pragma once

#include <array>
#include <cstdint>

#include "dsjoin/net/frame.hpp"

namespace dsjoin::net {

/// Monotonic counters for one traffic aggregate (a link, a node, or the
/// whole system).
struct TrafficCounters {
  std::array<std::uint64_t, 4> frames_by_kind{};  // indexed by FrameKind
  std::array<std::uint64_t, 4> bytes_by_kind{};
  std::uint64_t piggyback_bytes = 0;
  // Physical wire records written by a socket transport. With coalescing a
  // record carries many logical frames, so wire_records <= total_frames();
  // header_bytes_saved is the header overhead the shared batch header
  // avoided relative to one record per frame. Logical frame/byte counters
  // above are unaffected by batching — that is the accounting contract.
  std::uint64_t wire_records = 0;
  std::uint64_t header_bytes_saved = 0;

  void record(const Frame& frame) noexcept {
    const auto k = static_cast<std::size_t>(frame.kind);
    ++frames_by_kind[k];
    bytes_by_kind[k] += frame.wire_bytes();
    piggyback_bytes += frame.piggyback_bytes;
  }

  /// One physical record flushed to a socket, carrying `frames` logical
  /// frames and saving `bytes_saved` header bytes vs per-frame records.
  void record_flush(std::uint64_t bytes_saved) noexcept {
    ++wire_records;
    header_bytes_saved += bytes_saved;
  }

  void merge(const TrafficCounters& other) noexcept {
    for (std::size_t k = 0; k < frames_by_kind.size(); ++k) {
      frames_by_kind[k] += other.frames_by_kind[k];
      bytes_by_kind[k] += other.bytes_by_kind[k];
    }
    piggyback_bytes += other.piggyback_bytes;
    wire_records += other.wire_records;
    header_bytes_saved += other.header_bytes_saved;
  }

  std::uint64_t total_frames() const noexcept {
    std::uint64_t t = 0;
    for (auto f : frames_by_kind) t += f;
    return t;
  }

  std::uint64_t total_bytes() const noexcept {
    std::uint64_t t = 0;
    for (auto b : bytes_by_kind) t += b;
    return t;
  }

  std::uint64_t frames(FrameKind kind) const noexcept {
    return frames_by_kind[static_cast<std::size_t>(kind)];
  }
  std::uint64_t bytes(FrameKind kind) const noexcept {
    return bytes_by_kind[static_cast<std::size_t>(kind)];
  }

  /// Summary bytes (standalone summary frames + piggybacked share) as a
  /// fraction of all bytes transmitted — the Figure 8 ratio.
  double summary_byte_fraction() const noexcept {
    const auto total = total_bytes();
    if (total == 0) return 0.0;
    const auto summary = bytes(FrameKind::kSummary) + piggyback_bytes;
    return static_cast<double>(summary) / static_cast<double>(total);
  }
};

}  // namespace dsjoin::net
