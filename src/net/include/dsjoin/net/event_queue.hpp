// Discrete-event scheduler in virtual time.
//
// The WAN prototype of the paper ran on twenty workstations with artificial
// latency and bandwidth shaping; our reproduction runs the same node logic
// under a deterministic virtual clock. Events fire in nondecreasing time
// order; ties break by insertion order (FIFO), which the simulated links
// rely on for TCP-like ordering.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace dsjoin::net {

/// Virtual time in seconds.
using SimTime = double;

/// A min-heap of timestamped callbacks with deterministic tie-breaking.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedules `fn` at absolute virtual time `when` (>= now()).
  void schedule_at(SimTime when, Callback fn);

  /// Schedules `fn` `delay` seconds from now.
  void schedule_in(SimTime delay, Callback fn) { schedule_at(now_ + delay, std::move(fn)); }

  /// Current virtual time (the timestamp of the last executed event).
  SimTime now() const noexcept { return now_; }

  bool empty() const noexcept { return heap_.empty(); }
  std::size_t pending() const noexcept { return heap_.size(); }

  /// Executes the earliest event; returns false if none is pending.
  bool run_one();

  /// Runs events until the queue drains or the next event would fire after
  /// `limit`; returns the number executed. now() ends at the timestamp of
  /// the last executed event (not advanced to `limit`).
  std::size_t run_until(SimTime limit);

  /// Runs events until the queue drains or `max_events` were executed.
  std::size_t run_all(std::size_t max_events = SIZE_MAX);

 private:
  struct Event {
    SimTime when;
    std::uint64_t sequence;  // insertion order for stable ties
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.when != b.when) return a.when > b.when;
      return a.sequence > b.sequence;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  SimTime now_ = 0.0;
  std::uint64_t next_sequence_ = 0;
};

}  // namespace dsjoin::net
