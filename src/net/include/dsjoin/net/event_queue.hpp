// Discrete-event scheduler in virtual time.
//
// The WAN prototype of the paper ran on twenty workstations with artificial
// latency and bandwidth shaping; our reproduction runs the same node logic
// under a deterministic virtual clock. Events fire in nondecreasing time
// order; ties break by insertion order (FIFO), which the simulated links
// rely on for TCP-like ordering.
//
// Epochs: the parallel driver consumes the queue in *epochs* — all events
// sharing the next virtual timestamp (or, with lookahead, all events inside
// a half-open window no wider than the minimum network latency, so nothing
// executed in the epoch can schedule a cross-node event back into it). The
// queue supports this with next_when()/run_epoch() plus *barrier* events:
// events that must never share an epoch with per-node work (node restarts,
// topology changes). run_all()/run_one() treat barrier events like any
// other, so the serial path is unchanged.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace dsjoin::net {

/// Virtual time in seconds.
using SimTime = double;

/// A min-heap of timestamped callbacks with deterministic tie-breaking.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedules `fn` at absolute virtual time `when` (>= now()).
  void schedule_at(SimTime when, Callback fn);

  /// Schedules `fn` `delay` seconds from now.
  void schedule_in(SimTime delay, Callback fn) { schedule_at(now_ + delay, std::move(fn)); }

  /// Schedules a *barrier* event: run_epoch() and the parallel driver's
  /// dispatch loop stop in front of it so it executes alone, after every
  /// earlier event's effects are fully applied. Serial execution order is
  /// identical to schedule_at.
  void schedule_barrier_at(SimTime when, Callback fn);

  /// Current virtual time (the timestamp of the last executed event).
  SimTime now() const noexcept { return now_; }

  bool empty() const noexcept { return heap_.empty(); }
  std::size_t pending() const noexcept { return heap_.size(); }

  /// Timestamp of the earliest pending event. Precondition: !empty().
  SimTime next_when() const noexcept { return heap_.top().when; }

  /// Whether the earliest pending event is a barrier event.
  /// Precondition: !empty().
  bool next_is_barrier() const noexcept { return heap_.top().barrier; }

  /// Executes the earliest event; returns false if none is pending.
  bool run_one();

  /// Runs one epoch: every pending event sharing the earliest pending
  /// timestamp, in insertion order — except that a barrier event ends the
  /// epoch (a leading barrier event runs alone). Events scheduled *during*
  /// the epoch at the same timestamp join it (they sort after every event
  /// already pending, exactly as under run_all). Returns the number of
  /// events executed (0 when the queue is empty).
  std::size_t run_epoch();

  /// Runs events until the queue drains or the next event would fire after
  /// `limit`; returns the number executed. now() ends at the timestamp of
  /// the last executed event (not advanced to `limit`).
  std::size_t run_until(SimTime limit);

  /// Runs events until the queue drains or `max_events` were executed.
  std::size_t run_all(std::size_t max_events = SIZE_MAX);

 private:
  struct Event {
    SimTime when;
    std::uint64_t sequence;  // insertion order for stable ties
    bool barrier;
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.when != b.when) return a.when > b.when;
      return a.sequence > b.sequence;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  SimTime now_ = 0.0;
  std::uint64_t next_sequence_ = 0;
};

}  // namespace dsjoin::net
