// Wire frames and node addressing.
//
// The network layer carries opaque frames between nodes; the core layer
// defines their payload encodings. Frames carry two accounting fields the
// experiments need: the total payload size (all of Figures 9-11 count
// frames and bytes) and the piggybacked-summary share (Figure 8 reports DFT
// coefficient updates as a percentage of net data transmitted).
#pragma once

#include <cstdint>
#include <vector>

namespace dsjoin::net {

/// Index of a processing node, dense in [0, N).
using NodeId = std::uint32_t;

/// Coarse frame classification used for byte/message accounting.
enum class FrameKind : std::uint8_t {
  kTuple = 0,    ///< a forwarded stream tuple (possibly with piggybacked summary)
  kSummary = 1,  ///< a standalone summary update (DFT coeffs / Bloom / sketch)
  kResult = 2,   ///< shipped join-result tuples
  kControl = 3,  ///< policy control traffic (fallback announcements etc.)
};

/// Human-readable frame kind name.
const char* to_string(FrameKind kind) noexcept;

/// One network frame. `payload` is the serialized body (owned);
/// `piggyback_bytes` is the portion of the payload that is summary data
/// riding along with a tuple, and must not exceed payload.size().
struct Frame {
  NodeId from = 0;
  NodeId to = 0;
  FrameKind kind = FrameKind::kTuple;
  std::vector<std::uint8_t> payload;
  std::uint32_t piggyback_bytes = 0;

  /// Bytes on the wire: payload plus a fixed 16-byte header (addresses,
  /// kind, length), mirroring the prototype's framing.
  std::size_t wire_bytes() const noexcept { return payload.size() + 16; }
};

}  // namespace dsjoin::net
