// Transport abstraction.
//
// Node logic is written against this interface so the same code runs over
// the deterministic WAN emulator (experiments) and real TCP sockets (the
// wan_tcp_demo example) — the reproduction analogue of the paper's
// prototype running on a shaped Ethernet cluster.
#pragma once

#include <functional>
#include <vector>

#include "dsjoin/common/status.hpp"
#include "dsjoin/net/frame.hpp"
#include "dsjoin/net/stats.hpp"

namespace dsjoin::net {

/// Invoked at the destination when a frame arrives.
using DeliveryHandler = std::function<void(Frame&&)>;

/// Invoked at the destination with every logical frame decoded from one
/// wire record, in send order. Socket transports prefer this over the
/// per-frame handler when both are installed, so the receiving side can
/// amortize its locking across a coalesced batch.
using BatchDeliveryHandler = std::function<void(std::vector<Frame>&&)>;

/// Point-to-point, ordered, reliable frame delivery between N nodes.
class Transport {
 public:
  virtual ~Transport() = default;

  Transport() = default;
  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  /// Number of addressable nodes.
  virtual std::size_t node_count() const noexcept = 0;

  /// Installs the delivery handler for a node. Must be called for every
  /// node before the first send to it.
  virtual void register_handler(NodeId node, DeliveryHandler handler) = 0;

  /// Queues a frame for delivery, taking ownership of its payload (the
  /// send path never copies it). Returns kInvalidArgument for bad
  /// addresses; transports never drop frames silently.
  virtual common::Status send(Frame&& frame) = 0;

  /// System-wide traffic counters (frames recorded when sent).
  virtual const TrafficCounters& stats() const noexcept = 0;

  /// Seconds of queued-but-untransmitted backlog on the busiest outgoing
  /// link of `node` — the backpressure signal throttling ingestion in the
  /// throughput experiments. Transports without shaping return 0.
  virtual double send_backlog_seconds(NodeId node) const noexcept = 0;
};

}  // namespace dsjoin::net
