// Real-socket transport (loopback TCP).
//
// The experiments run on the deterministic WAN emulator, but the node logic
// is transport-agnostic; this transport runs the same frames over real TCP
// sockets, demonstrating that the prototype is not simulation-bound (the
// paper's system ran on twenty physical workstations). Topology: a full
// mesh over loopback — node i listens on base_port + i and dials every
// higher-numbered peer once; frames are length-prefixed on the wire.
//
// Threading: one receiver thread per node drains all of that node's
// sockets with poll(2) and invokes the delivery handler inline; handlers
// must therefore be internally synchronized or single-node-owned (the
// wan_tcp_demo example serializes each node behind its own mutex).
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "dsjoin/net/transport.hpp"

namespace dsjoin::net {

/// RAII file descriptor.
class UniqueFd {
 public:
  UniqueFd() = default;
  explicit UniqueFd(int fd) noexcept : fd_(fd) {}
  ~UniqueFd() { reset(); }
  UniqueFd(UniqueFd&& other) noexcept : fd_(other.release()) {}
  UniqueFd& operator=(UniqueFd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.release();
    }
    return *this;
  }
  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;

  int get() const noexcept { return fd_; }
  bool valid() const noexcept { return fd_ >= 0; }
  int release() noexcept {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void reset() noexcept;

 private:
  int fd_ = -1;
};

/// Full-mesh loopback TCP transport for N in-process nodes.
class TcpTransport final : public Transport {
 public:
  /// Binds, connects the mesh, and starts receiver threads. Throws
  /// std::runtime_error if any socket operation fails (setup is not a
  /// recoverable path).
  TcpTransport(std::size_t nodes, std::uint16_t base_port);
  ~TcpTransport() override;

  std::size_t node_count() const noexcept override { return nodes_; }
  void register_handler(NodeId node, DeliveryHandler handler) override;
  common::Status send(Frame frame) override;
  const TrafficCounters& stats() const noexcept override { return totals_; }
  double send_backlog_seconds(NodeId) const noexcept override { return 0.0; }

  /// Stops receiver threads and closes every socket (also done by the
  /// destructor). Safe to call twice.
  void shutdown();

 private:
  void receiver_loop(NodeId node);
  common::Status write_frame(int fd, const Frame& frame);

  std::size_t nodes_;
  std::atomic<bool> running_{true};
  // Written by register_handler while receiver threads are already polling,
  // so every access goes through handlers_mutex_ (receivers copy the
  // handler out under the lock, then invoke it unlocked).
  std::vector<DeliveryHandler> handlers_;
  std::mutex handlers_mutex_;
  std::vector<std::vector<UniqueFd>> peer_fds_;  // [node][peer] connected socket
  std::vector<std::unique_ptr<std::mutex>> send_mutexes_;  // per (node) sender
  std::vector<std::thread> receivers_;
  TrafficCounters totals_;
  std::mutex totals_mutex_;
};

}  // namespace dsjoin::net
