// Real-socket transport (loopback TCP).
//
// The experiments run on the deterministic WAN emulator, but the node logic
// is transport-agnostic; this transport runs the same frames over real TCP
// sockets, demonstrating that the prototype is not simulation-bound (the
// paper's system ran on twenty physical workstations). Topology: a full
// mesh over loopback — node i listens on its own port and dials every
// higher-numbered peer once; frames are length-prefixed on the wire.
//
// Port selection: with base_port == 0 (the default) every listener binds an
// ephemeral port and the in-process mesh exchanges the real ports
// internally — no fixed range, so concurrent transports (parallel test
// processes) can never collide. With an explicit base_port, node i prefers
// base_port + i but falls back to an ephemeral port if that one is taken,
// so an unrelated squatter degrades the port layout instead of the run.
//
// Threading: one receiver thread per node drains all of that node's
// sockets with poll(2) and invokes the delivery handler inline; handlers
// must therefore be internally synchronized or single-node-owned.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "dsjoin/net/channel.hpp"
#include "dsjoin/net/transport.hpp"

namespace dsjoin::net {

/// Full-mesh loopback TCP transport for N in-process nodes.
class TcpTransport final : public Transport {
 public:
  /// Binds, connects the mesh, and starts receiver threads. Throws
  /// std::runtime_error if any socket operation fails (setup is not a
  /// recoverable path).
  ///
  /// @param base_port  0 = every listener ephemeral; otherwise node i
  ///                   prefers base_port + i with ephemeral fallback.
  /// @param link_rate_bytes_per_s  models each directed link draining at
  ///                   this rate for send_backlog_seconds (real loopback
  ///                   has no shaping, so backlog is tracked as a token
  ///                   bucket over queued wire bytes); 0 disables the
  ///                   model and backlog reads 0.
  /// @param coalesce   per-link SendBuffer flush budgets; the default
  ///                   (max_frames = 1) writes one wire record per frame.
  explicit TcpTransport(std::size_t nodes, std::uint16_t base_port = 0,
                        double link_rate_bytes_per_s = 0.0,
                        CoalesceOptions coalesce = {});
  ~TcpTransport() override;

  std::size_t node_count() const noexcept override { return nodes_; }
  void register_handler(NodeId node, DeliveryHandler handler) override;

  /// Installs a whole-record delivery handler for a node; takes precedence
  /// over the per-frame handler so a driver can amortize its delivery lock
  /// across every frame of a coalesced record.
  void register_batch_handler(NodeId node, BatchDeliveryHandler handler);

  common::Status send(Frame&& frame) override;
  const TrafficCounters& stats() const noexcept override { return totals_; }

  /// Race-free copy of the transport-wide counters.
  TrafficCounters stats_snapshot() const {
    std::lock_guard lock(totals_mutex_);
    return totals_;
  }

  /// Race-free copy of the counters for traffic *sent by* `node` — the
  /// per-node attribution run_inprocess_tcp feeds into NodeReports so the
  /// engine can aggregate with merge_traffic = true.
  TrafficCounters node_stats_snapshot(NodeId node) const {
    std::lock_guard lock(*send_mutexes_[node]);
    return node_totals_[node];
  }

  /// Worst modeled backlog over `node`'s outgoing links, in seconds at the
  /// configured link rate (0 when no rate was configured) — the same
  /// backpressure signal the WAN emulator provides, so the ingestion
  /// throttle works unchanged over real sockets.
  double send_backlog_seconds(NodeId node) const noexcept override;

  /// The port node `node`'s listener actually bound.
  std::uint16_t listen_port(NodeId node) const { return ports_.at(node); }

  /// Stops receiver threads and closes every socket (also done by the
  /// destructor). Safe to call twice.
  void shutdown();

 private:
  /// Modeled occupancy of one directed link's send queue.
  struct LinkBacklog {
    double queued_bytes = 0.0;
    std::chrono::steady_clock::time_point last{};
  };

  void receiver_loop(NodeId node);
  /// Drains `backlog` at the link rate up to `now`, then returns it.
  double drained_bytes(LinkBacklog& backlog,
                       std::chrono::steady_clock::time_point now) const;

  std::size_t nodes_;
  double link_rate_bytes_per_s_;
  CoalesceOptions coalesce_;
  std::atomic<bool> running_{true};
  // Written by register_handler while receiver threads are already polling,
  // so every access goes through handlers_mutex_ (receivers copy the
  // handler out under the lock, then invoke it unlocked).
  std::vector<DeliveryHandler> handlers_;
  std::vector<BatchDeliveryHandler> batch_handlers_;
  std::mutex handlers_mutex_;
  std::vector<std::vector<UniqueFd>> peer_fds_;  // [node][peer] connected socket
  std::vector<std::unique_ptr<std::mutex>> send_mutexes_;  // per (node) sender
  // [node][peer] pending coalesced frames, guarded by send_mutexes_[node].
  std::vector<std::vector<SendBuffer>> send_buffers_;
  // [node][peer] modeled send-queue state, guarded by send_mutexes_[node].
  mutable std::vector<std::vector<LinkBacklog>> backlog_;
  std::vector<std::uint16_t> ports_;  // actual bound listener ports
  std::vector<std::thread> receivers_;
  TrafficCounters totals_;
  mutable std::mutex totals_mutex_;
  // Traffic sent by each node, guarded by that node's send mutex.
  std::vector<TrafficCounters> node_totals_;
};

}  // namespace dsjoin::net
