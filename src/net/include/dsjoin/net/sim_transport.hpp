// Deterministic WAN emulator (the paper's testbed, Section 6).
//
// The prototype imposed 20-100 ms latency on every message and emulated a
// 90 kbps link by pausing one second per 90 kilobits transmitted. This
// transport reproduces both behaviours on a virtual clock:
//
//  * latency: per-frame draw, uniform in [min, max], from a deterministic
//    per-link generator;
//  * bandwidth: either smooth serialization delay (bits / bps — the default)
//    or the paper's literal pause-per-90kbit burst shaping;
//  * ordering: per-link FIFO is enforced (TCP semantics) even when a later
//    frame draws a smaller latency.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "dsjoin/common/rng.hpp"
#include "dsjoin/net/event_queue.hpp"
#include "dsjoin/net/transport.hpp"

namespace dsjoin::net {

/// WAN shaping parameters; defaults match the paper's testbed.
struct WanProfile {
  /// Whether the 90 kbps budget is shared by all of a node's outgoing links
  /// (the paper pauses the *workstation* per 90 kilobits transmitted) or
  /// applies independently per directed link.
  enum class BandwidthScope { kPerNode, kPerLink };

  double latency_min_s = 0.020;   ///< 20 ms
  double latency_max_s = 0.100;   ///< 100 ms
  double bandwidth_bps = 90'000;  ///< 90 kbps
  BandwidthScope scope = BandwidthScope::kPerNode;
  /// When true, emulate the paper's literal "pause 1 s every 90 kilobits";
  /// when false, apply smooth serialization delay at the same average rate.
  bool pause_burst_shaping = false;
  /// 0 disables bandwidth shaping entirely (pure-latency network).
  bool unlimited_bandwidth = false;
  /// Failure injection: probability that a frame is silently dropped in
  /// flight. The protocol has no retransmission (the paper's prototype ran
  /// over TCP, but a lossy substrate lets tests measure degradation).
  double drop_probability = 0.0;
  /// Failure injection: probability that a delivered frame's payload is
  /// corrupted (one byte flipped). Decoders must reject such frames.
  double corrupt_probability = 0.0;

  /// A profile with no latency and no shaping (unit tests, logic checks).
  static WanProfile ideal() {
    WanProfile p;
    p.latency_min_s = p.latency_max_s = 0.0;
    p.unlimited_bandwidth = true;
    return p;
  }
};

/// Virtual-time transport over an EventQueue.
class SimTransport final : public Transport {
 public:
  /// @param queue  the experiment's clock; outlives the transport.
  /// @param nodes  number of nodes (addresses 0..nodes-1).
  /// @param profile WAN shaping.
  /// @param seed   seeds the per-link latency generators.
  SimTransport(EventQueue& queue, std::size_t nodes, const WanProfile& profile,
               std::uint64_t seed);

  std::size_t node_count() const noexcept override { return handlers_.size(); }
  void register_handler(NodeId node, DeliveryHandler handler) override;
  common::Status send(Frame&& frame) override;
  const TrafficCounters& stats() const noexcept override { return totals_; }
  double send_backlog_seconds(NodeId node) const noexcept override;

  /// Counters for one directed link.
  const TrafficCounters& link_stats(NodeId from, NodeId to) const;

  /// Frames dropped / corrupted by failure injection so far.
  std::uint64_t dropped_frames() const noexcept { return dropped_; }
  std::uint64_t corrupted_frames() const noexcept { return corrupted_; }

  /// Observes every summary-bearing frame (kSummary, or kTuple with a
  /// piggyback block) the instant its delivery is committed: after the
  /// drop/corrupt draws, before the latency-delayed handler fires. The
  /// simulator's owner uses this as a virtual-time summary plane — the
  /// receiving node buffers the block by its stamp instead of by arrival.
  /// In the parallel driver the sink runs at the epoch barrier, in slot
  /// order, so serial and parallel runs observe the identical sequence.
  void set_summary_sink(std::function<void(const Frame&)> sink) {
    summary_sink_ = std::move(sink);
  }

  // --- Parallel-epoch support (the deterministic multi-core driver) ---
  //
  // While an epoch is open, send() still applies every *sender-owned*
  // effect immediately — link/NIC serialization state, per-link RNG draws
  // (drop, corruption, latency), per-link counters — but defers the
  // cross-node effects (delivery scheduling on the event queue, the
  // system-wide counters) into per-slot buffers. end_epoch() flushes the
  // buffers in slot order; with slots numbered in the serial dispatch
  // order of the generating events, the flush reproduces bit-for-bit the
  // event-queue state a serial run would have produced.
  //
  // Contract: one epoch slot is driven by exactly one thread at a time,
  // all frames of one sender come from slots run on the same thread
  // (shared-nothing nodes), and begin/end_epoch are called from the
  // driver thread with the worker phase strictly in between.

  /// Opens an epoch with `slots` send buffers (one per deferred task).
  void begin_epoch(std::size_t slots);
  /// Binds the calling thread to `slot`; sends then use `event_time` as
  /// the virtual send time (worker threads must not read the clock).
  void bind_epoch_slot(std::size_t slot, SimTime event_time);
  /// Flushes all deferred deliveries and counters in slot order.
  void end_epoch();

 private:
  struct Link {
    common::Xoshiro256 rng{0};
    SimTime busy_until = 0.0;        // when the link finishes serializing
    SimTime last_arrival = 0.0;      // FIFO floor for the next delivery
    double bits_since_pause = 0.0;   // pause-burst accumulator
    TrafficCounters counters;
  };
  struct Sender {
    SimTime busy_until = 0.0;        // shared NIC (per-node scope)
    double bits_since_pause = 0.0;
  };

  Link& link(NodeId from, NodeId to) noexcept {
    return links_[static_cast<std::size_t>(from) * handlers_.size() + to];
  }
  const Link& link(NodeId from, NodeId to) const noexcept {
    return links_[static_cast<std::size_t>(from) * handlers_.size() + to];
  }

  /// A send whose cross-node effects are deferred to the epoch barrier.
  struct PendingSend {
    Frame frame;
    SimTime arrival = 0.0;
    bool deliver = false;  // false: dropped in flight (still accounted)
    bool dropped = false;
    bool corrupted = false;
  };

  EventQueue& queue_;
  WanProfile profile_;
  std::function<void(const Frame&)> summary_sink_;
  std::vector<DeliveryHandler> handlers_;
  std::vector<Link> links_;  // N*N, row-major by sender
  std::vector<Sender> senders_;
  TrafficCounters totals_;
  std::uint64_t dropped_ = 0;
  std::uint64_t corrupted_ = 0;
  bool epoch_open_ = false;
  std::vector<std::vector<PendingSend>> epoch_sends_;  // by slot
};

}  // namespace dsjoin::net
