#include "dsjoin/net/sim_transport.hpp"

#include <cassert>
#include <utility>

#include "dsjoin/common/strformat.hpp"

namespace dsjoin::net {

namespace {
// Which transport/slot the current thread is executing epoch work for.
// Thread-local so concurrent node workers never share it; compared by
// pointer so a transport only honours bindings made against itself.
struct EpochBinding {
  const void* transport = nullptr;
  std::size_t slot = 0;
  SimTime event_time = 0.0;
};
thread_local EpochBinding tls_epoch_binding;

bool summary_bearing(const Frame& frame) noexcept {
  return frame.kind == FrameKind::kSummary ||
         (frame.kind == FrameKind::kTuple && frame.piggyback_bytes > 0);
}
}  // namespace

const char* to_string(FrameKind kind) noexcept {
  switch (kind) {
    case FrameKind::kTuple: return "tuple";
    case FrameKind::kSummary: return "summary";
    case FrameKind::kResult: return "result";
    case FrameKind::kControl: return "control";
  }
  return "?";
}

SimTransport::SimTransport(EventQueue& queue, std::size_t nodes,
                           const WanProfile& profile, std::uint64_t seed)
    : queue_(queue), profile_(profile), handlers_(nodes),
      links_(nodes * nodes), senders_(nodes) {
  common::Xoshiro256 root(seed);
  for (auto& l : links_) l.rng = root.fork();
}

void SimTransport::register_handler(NodeId node, DeliveryHandler handler) {
  assert(node < handlers_.size());
  handlers_[node] = std::move(handler);
}

common::Status SimTransport::send(Frame&& frame) {
  if (frame.from >= handlers_.size() || frame.to >= handlers_.size()) {
    return common::Status(common::ErrorCode::kInvalidArgument,
                          common::str_format("bad address %u -> %u", frame.from,
                                             frame.to));
  }
  if (frame.from == frame.to) {
    return common::Status(common::ErrorCode::kInvalidArgument,
                          "loopback frames never hit the network");
  }
  if (!handlers_[frame.to]) {
    return common::Status(common::ErrorCode::kFailedPrecondition,
                          common::str_format("node %u has no handler", frame.to));
  }

  Link& l = link(frame.from, frame.to);
  // Inside an epoch, a bound worker thread defers the cross-node effects of
  // the send; everything below that touches only the sender's own row
  // (link RNG, serialization state, link counters) runs immediately either
  // way, so the per-link draw sequences are identical in both modes.
  const bool deferred = epoch_open_ && tls_epoch_binding.transport == this;
  const SimTime now = deferred ? tls_epoch_binding.event_time : queue_.now();
  l.counters.record(frame);
  if (!deferred) totals_.record(frame);

  // Failure injection happens after accounting: the sender paid for the
  // frame whether or not the network delivers it faithfully.
  if (profile_.drop_probability > 0.0 &&
      l.rng.next_bool(profile_.drop_probability)) {
    if (deferred) {
      epoch_sends_[tls_epoch_binding.slot].push_back(
          PendingSend{std::move(frame), 0.0, false, true, false});
    } else {
      ++dropped_;
    }
    return common::Status::ok();
  }
  bool corrupted = false;
  if (profile_.corrupt_probability > 0.0 && !frame.payload.empty() &&
      l.rng.next_bool(profile_.corrupt_probability)) {
    corrupted = true;
    if (!deferred) ++corrupted_;
    const auto at = l.rng.next_below(frame.payload.size());
    frame.payload[at] ^= 0xff;
  }

  const double bits = static_cast<double>(frame.wire_bytes()) * 8.0;

  // Serialization: the frame occupies the shaped resource (the sender's NIC
  // under per-node scope — the paper pauses the workstation — or the
  // directed link under per-link scope) after any queued frames.
  const bool per_node = profile_.scope == WanProfile::BandwidthScope::kPerNode;
  SimTime& busy_until = per_node ? senders_[frame.from].busy_until : l.busy_until;
  double& pause_acc =
      per_node ? senders_[frame.from].bits_since_pause : l.bits_since_pause;
  SimTime start = busy_until > now ? busy_until : now;
  SimTime transmit_done = start;
  if (!profile_.unlimited_bandwidth) {
    if (profile_.pause_burst_shaping) {
      // The paper's shaping: transmit at wire speed but insert a 1 s pause
      // after each 90 kilobits transmitted.
      pause_acc += bits;
      while (pause_acc >= profile_.bandwidth_bps) {
        pause_acc -= profile_.bandwidth_bps;
        transmit_done += 1.0;
      }
    } else {
      transmit_done = start + bits / profile_.bandwidth_bps;
    }
  }
  busy_until = transmit_done;
  if (per_node) l.busy_until = transmit_done;  // keep link stats coherent

  // Propagation: per-frame uniform latency; FIFO is enforced by flooring at
  // the previous arrival (TCP would not reorder).
  const double latency =
      profile_.latency_max_s > profile_.latency_min_s
          ? l.rng.next_double_in(profile_.latency_min_s, profile_.latency_max_s)
          : profile_.latency_min_s;
  SimTime arrival = transmit_done + latency;
  if (arrival <= l.last_arrival) arrival = l.last_arrival + 1e-9;
  l.last_arrival = arrival;

  if (deferred) {
    epoch_sends_[tls_epoch_binding.slot].push_back(
        PendingSend{std::move(frame), arrival, true, false, corrupted});
    return common::Status::ok();
  }
  // Delivery is committed: tee summary content to the virtual-time plane
  // (post-corruption, so a mangled block still fails its checksum there).
  if (summary_sink_ && summary_bearing(frame)) summary_sink_(frame);
  DeliveryHandler& handler = handlers_[frame.to];
  queue_.schedule_at(arrival,
                     [&handler, f = std::move(frame)]() mutable { handler(std::move(f)); });
  return common::Status::ok();
}

void SimTransport::begin_epoch(std::size_t slots) {
  assert(!epoch_open_);
  if (epoch_sends_.size() < slots) epoch_sends_.resize(slots);
  epoch_open_ = true;
}

void SimTransport::bind_epoch_slot(std::size_t slot, SimTime event_time) {
  tls_epoch_binding = EpochBinding{this, slot, event_time};
}

void SimTransport::end_epoch() {
  assert(epoch_open_);
  epoch_open_ = false;
  for (auto& slot : epoch_sends_) {
    for (auto& pending : slot) {
      // Counter updates and delivery scheduling happen here, in slot order:
      // exactly the order a serial run would have produced them in, so the
      // event queue's tie-breaking sequence numbers line up too.
      totals_.record(pending.frame);
      if (pending.dropped) ++dropped_;
      if (pending.corrupted) ++corrupted_;
      if (pending.deliver) {
        if (summary_sink_ && summary_bearing(pending.frame)) {
          summary_sink_(pending.frame);
        }
        DeliveryHandler& handler = handlers_[pending.frame.to];
        queue_.schedule_at(pending.arrival,
                           [&handler, f = std::move(pending.frame)]() mutable {
                             handler(std::move(f));
                           });
      }
    }
    slot.clear();
  }
}

double SimTransport::send_backlog_seconds(NodeId node) const noexcept {
  const SimTime now = queue_.now();
  if (profile_.scope == WanProfile::BandwidthScope::kPerNode) {
    const double backlog = senders_[node].busy_until - now;
    return backlog > 0.0 ? backlog : 0.0;
  }
  double worst = 0.0;
  for (NodeId to = 0; to < handlers_.size(); ++to) {
    if (to == node) continue;
    const double backlog = link(node, to).busy_until - now;
    if (backlog > worst) worst = backlog;
  }
  return worst;
}

const TrafficCounters& SimTransport::link_stats(NodeId from, NodeId to) const {
  assert(from < handlers_.size() && to < handlers_.size());
  return link(from, to).counters;
}

}  // namespace dsjoin::net
