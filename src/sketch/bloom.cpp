#include "dsjoin/sketch/bloom.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <numbers>
#include <limits>
#include <stdexcept>

namespace dsjoin::sketch {

namespace {
common::Xoshiro256 seeded(std::uint64_t seed) { return common::Xoshiro256(seed); }
}  // namespace

std::uint32_t optimal_hash_count(std::size_t bits, std::size_t expected_keys) noexcept {
  if (expected_keys == 0) return 1;
  const double k = static_cast<double>(bits) / static_cast<double>(expected_keys) *
                   std::numbers::ln2;
  const auto rounded = static_cast<std::uint32_t>(std::lround(k));
  return rounded < 1 ? 1 : (rounded > 16 ? 16 : rounded);
}

double bloom_false_positive_rate(std::size_t bits, std::uint32_t hashes,
                                 std::size_t keys) noexcept {
  if (bits == 0) return 1.0;
  const double exponent = -static_cast<double>(hashes) *
                          static_cast<double>(keys) / static_cast<double>(bits);
  return std::pow(1.0 - std::exp(exponent), static_cast<double>(hashes));
}

BloomFilter::BloomFilter(std::size_t bits, std::uint32_t hashes, std::uint64_t seed)
    : bits_(bits), hashes_(hashes), seed_(seed),
      hash_([&] {
        auto rng = seeded(seed);
        return DoubleHash(rng);
      }()),
      words_((bits + 63) / 64, 0) {
  if (bits == 0 || hashes == 0) {
    throw std::invalid_argument("Bloom filter geometry must be positive");
  }
}

void BloomFilter::insert(std::uint64_t key) {
  for (std::uint32_t i = 0; i < hashes_; ++i) {
    const std::uint64_t bit = hash_.probe(key, i, bits_);
    words_[bit >> 6] |= std::uint64_t{1} << (bit & 63);
  }
}

bool BloomFilter::contains(std::uint64_t key) const {
  for (std::uint32_t i = 0; i < hashes_; ++i) {
    const std::uint64_t bit = hash_.probe(key, i, bits_);
    if ((words_[bit >> 6] & (std::uint64_t{1} << (bit & 63))) == 0) return false;
  }
  return true;
}

std::size_t BloomFilter::popcount() const noexcept {
  std::size_t total = 0;
  for (std::uint64_t w : words_) total += static_cast<std::size_t>(std::popcount(w));
  return total;
}

double BloomFilter::estimated_fpp() const noexcept {
  const double fill = static_cast<double>(popcount()) / static_cast<double>(bits_);
  return std::pow(fill, static_cast<double>(hashes_));
}

void BloomFilter::serialize(common::BufferWriter& out) const {
  out.write_u64(bits_);
  out.write_u32(hashes_);
  out.write_u64(seed_);
  for (std::uint64_t w : words_) out.write_u64(w);
}

common::Result<BloomFilter> BloomFilter::deserialize(common::BufferReader& in) {
  auto bits = in.read_u64();
  if (!bits) return bits.status();
  auto hashes = in.read_u32();
  if (!hashes) return hashes.status();
  auto seed = in.read_u64();
  if (!seed) return seed.status();
  if (bits.value() == 0 || bits.value() > (1ull << 33) || hashes.value() == 0 ||
      hashes.value() > 16) {
    return common::Status(common::ErrorCode::kDataLoss, "implausible Bloom geometry");
  }
  BloomFilter filter(bits.value(), hashes.value(), seed.value());
  for (auto& w : filter.words_) {
    auto v = in.read_u64();
    if (!v) return v.status();
    w = v.value();
  }
  return filter;
}

CountingBloomFilter::CountingBloomFilter(std::size_t counters, std::uint32_t hashes,
                                         std::uint64_t seed)
    : hashes_(hashes), seed_(seed),
      hash_([&] {
        auto rng = seeded(seed);
        return DoubleHash(rng);
      }()),
      counters_mod_(counters),
      counters_(counters, 0) {
  if (counters == 0 || hashes == 0) {
    throw std::invalid_argument("counting Bloom geometry must be positive");
  }
}

void CountingBloomFilter::insert(std::uint64_t key) {
  for (std::uint32_t i = 0; i < hashes_; ++i) {
    auto& c = counters_[hash_.probe(key, i, counters_.size())];
    if (c != std::numeric_limits<std::uint16_t>::max()) ++c;  // saturate
  }
}

void CountingBloomFilter::erase(std::uint64_t key) {
  for (std::uint32_t i = 0; i < hashes_; ++i) {
    auto& c = counters_[hash_.probe(key, i, counters_.size())];
    // Saturated counters stay pinned (they have lost their exact count);
    // zero counters indicate a misuse that we refuse to wrap around.
    if (c != 0 && c != std::numeric_limits<std::uint16_t>::max()) --c;
  }
}

void CountingBloomFilter::insert_keys_scalar(const std::uint64_t* keys,
                                             std::size_t n) {
  constexpr auto kMax = std::numeric_limits<std::uint16_t>::max();
  for (std::size_t j = 0; j < n; ++j) {
    const DoubleHash::Prepared p = hash_.prepare(keys[j]);
    for (std::uint32_t i = 0; i < hashes_; ++i) {
      auto& c = counters_[p.index(i, counters_mod_)];
      if (c != kMax) ++c;  // saturate
    }
  }
}

void CountingBloomFilter::erase_keys_scalar(const std::uint64_t* keys,
                                            std::size_t n) {
  constexpr auto kMax = std::numeric_limits<std::uint16_t>::max();
  for (std::size_t j = 0; j < n; ++j) {
    const DoubleHash::Prepared p = hash_.prepare(keys[j]);
    for (std::uint32_t i = 0; i < hashes_; ++i) {
      auto& c = counters_[p.index(i, counters_mod_)];
      if (c != 0 && c != kMax) --c;  // pinned / refuse wrap, as erase()
    }
  }
}

void CountingBloomFilter::apply_batch(std::span<const std::uint64_t> keys,
                                      std::span<const std::int32_t> deltas) {
  // Mixed inserts and erases do NOT commute (a decrement can be absorbed at
  // zero before an increment lands), so touches keep strict (key, probe)
  // order: state after the call is bit-identical to per-key insert()/erase().
  assert(keys.size() == deltas.size());
  constexpr auto kMax = std::numeric_limits<std::uint16_t>::max();
  for (std::size_t j = 0; j < keys.size(); ++j) {
    const DoubleHash::Prepared p = hash_.prepare(keys[j]);
    if (deltas[j] > 0) {
      for (std::uint32_t i = 0; i < hashes_; ++i) {
        auto& c = counters_[p.index(i, counters_mod_)];
        if (c != kMax) ++c;  // saturate
      }
    } else if (deltas[j] < 0) {
      for (std::uint32_t i = 0; i < hashes_; ++i) {
        auto& c = counters_[p.index(i, counters_mod_)];
        if (c != 0 && c != kMax) --c;  // pinned / refuse wrap, as erase()
      }
    }
  }
}

void CountingBloomFilter::insert_batch(std::span<const std::uint64_t> keys) {
  insert_keys_scalar(keys.data(), keys.size());
}

void CountingBloomFilter::erase_batch(std::span<const std::uint64_t> keys) {
  erase_keys_scalar(keys.data(), keys.size());
}

bool CountingBloomFilter::contains(std::uint64_t key) const {
  for (std::uint32_t i = 0; i < hashes_; ++i) {
    if (counters_[hash_.probe(key, i, counters_.size())] == 0) return false;
  }
  return true;
}

BloomFilter CountingBloomFilter::snapshot() const {
  BloomFilter out(counters_.size(), hashes_, seed_);
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    if (counters_[i] > 0) {
      out.words_[i >> 6] |= std::uint64_t{1} << (i & 63);
    }
  }
  return out;
}

}  // namespace dsjoin::sketch
