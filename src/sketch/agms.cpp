#include "dsjoin/sketch/agms.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace dsjoin::sketch {

AgmsShape AgmsShape::for_budget(std::size_t total_counters) {
  // s0 = 5*s1 (the paper's 5:1 ratio) with s0*s1 <= total_counters.
  std::uint32_t s1 = static_cast<std::uint32_t>(
      std::sqrt(static_cast<double>(total_counters) / 5.0));
  if (s1 == 0) s1 = 1;
  std::uint32_t s0 = 5 * s1;
  while (static_cast<std::size_t>(s0) * s1 > total_counters && s0 > 1) --s0;
  if (s0 == 0) s0 = 1;
  return AgmsShape{s0, s1};
}

AgmsSketch::AgmsSketch(AgmsShape shape, std::uint64_t seed)
    : shape_(shape), seed_(seed), counters_(shape.counters(), 0) {
  if (shape.s0 == 0 || shape.s1 == 0) {
    throw std::invalid_argument("AGMS shape must be positive");
  }
  common::Xoshiro256 rng(seed);
  xi_.reserve(shape.counters());
  for (std::size_t i = 0; i < shape.counters(); ++i) xi_.emplace_back(rng);
}

void AgmsSketch::update(std::uint64_t key, std::int64_t weight) {
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    counters_[i] += weight * xi_[i].sign(key);
  }
}

double AgmsSketch::estimate_join(const AgmsSketch& f, const AgmsSketch& g) {
  assert(f.shape_.s0 == g.shape_.s0 && f.shape_.s1 == g.shape_.s1);
  assert(f.seed_ == g.seed_);
  std::vector<double> row_means;
  row_means.reserve(f.shape_.s0);
  for (std::uint32_t r = 0; r < f.shape_.s0; ++r) {
    double acc = 0.0;
    for (std::uint32_t c = 0; c < f.shape_.s1; ++c) {
      const std::size_t i = static_cast<std::size_t>(r) * f.shape_.s1 + c;
      acc += static_cast<double>(f.counters_[i]) * static_cast<double>(g.counters_[i]);
    }
    row_means.push_back(acc / static_cast<double>(f.shape_.s1));
  }
  return median(std::move(row_means));
}

void AgmsSketch::merge(const AgmsSketch& other) {
  assert(seed_ == other.seed_);
  assert(counters_.size() == other.counters_.size());
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    counters_[i] += other.counters_[i];
  }
}

void AgmsSketch::serialize(common::BufferWriter& out) const {
  out.write_u32(shape_.s0);
  out.write_u32(shape_.s1);
  out.write_u64(seed_);
  for (std::int64_t c : counters_) out.write_i64(c);
}

common::Result<AgmsSketch> AgmsSketch::deserialize(common::BufferReader& in) {
  auto s0 = in.read_u32();
  if (!s0) return s0.status();
  auto s1 = in.read_u32();
  if (!s1) return s1.status();
  auto seed = in.read_u64();
  if (!seed) return seed.status();
  if (s0.value() == 0 || s1.value() == 0 ||
      static_cast<std::size_t>(s0.value()) * s1.value() > (1u << 24)) {
    return common::Status(common::ErrorCode::kDataLoss, "implausible AGMS shape");
  }
  AgmsSketch sketch(AgmsShape{s0.value(), s1.value()}, seed.value());
  for (auto& c : sketch.counters_) {
    auto v = in.read_i64();
    if (!v) return v.status();
    c = v.value();
  }
  return sketch;
}

void AgmsSketch::set_counters(std::vector<std::int64_t> counters) {
  assert(counters.size() == counters_.size());
  counters_ = std::move(counters);
}

FastAgmsSketch::FastAgmsSketch(std::uint32_t rows, std::uint32_t buckets,
                               std::uint64_t seed)
    : rows_(rows), buckets_(buckets), seed_(seed),
      counters_(static_cast<std::size_t>(rows) * buckets, 0) {
  if (rows == 0 || buckets == 0) {
    throw std::invalid_argument("FastAgms shape must be positive");
  }
  common::Xoshiro256 rng(seed);
  bucket_hash_.reserve(rows);
  sign_hash_.reserve(rows);
  for (std::uint32_t r = 0; r < rows; ++r) {
    bucket_hash_.emplace_back(rng);
    sign_hash_.emplace_back(rng);
  }
}

void FastAgmsSketch::update(std::uint64_t key, std::int64_t weight) {
  for (std::uint32_t r = 0; r < rows_; ++r) {
    const std::uint64_t b = bucket_hash_[r].bucket(key, buckets_);
    counters_[static_cast<std::size_t>(r) * buckets_ + b] +=
        weight * sign_hash_[r].sign(key);
  }
}

double FastAgmsSketch::estimate_join(const FastAgmsSketch& f,
                                     const FastAgmsSketch& g) {
  assert(f.rows_ == g.rows_ && f.buckets_ == g.buckets_ && f.seed_ == g.seed_);
  std::vector<double> row_products;
  row_products.reserve(f.rows_);
  for (std::uint32_t r = 0; r < f.rows_; ++r) {
    double acc = 0.0;
    for (std::uint32_t b = 0; b < f.buckets_; ++b) {
      const std::size_t i = static_cast<std::size_t>(r) * f.buckets_ + b;
      acc += static_cast<double>(f.counters_[i]) * static_cast<double>(g.counters_[i]);
    }
    row_products.push_back(acc);
  }
  return median(std::move(row_products));
}

double median(std::vector<double> values) {
  assert(!values.empty());
  const std::size_t mid = values.size() / 2;
  std::nth_element(values.begin(), values.begin() + static_cast<std::ptrdiff_t>(mid),
                   values.end());
  if (values.size() % 2 == 1) return values[mid];
  const double upper = values[mid];
  const double lower =
      *std::max_element(values.begin(), values.begin() + static_cast<std::ptrdiff_t>(mid));
  return 0.5 * (lower + upper);
}

}  // namespace dsjoin::sketch
