#include "dsjoin/sketch/agms.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "dsjoin/common/simd.hpp"

namespace dsjoin::sketch {

namespace {
// Batch passes run over fixed-size chunks so the hash scratch stays cache
// resident regardless of how many tuples an epoch delivers.
constexpr std::size_t kBatchChunk = 1024;
}  // namespace

AgmsShape AgmsShape::for_budget(std::size_t total_counters) {
  // s0 = 5*s1 (the paper's 5:1 ratio) with s0*s1 <= total_counters.
  std::uint32_t s1 = static_cast<std::uint32_t>(
      std::sqrt(static_cast<double>(total_counters) / 5.0));
  if (s1 == 0) s1 = 1;
  std::uint32_t s0 = 5 * s1;
  while (static_cast<std::size_t>(s0) * s1 > total_counters && s0 > 1) --s0;
  if (s0 == 0) s0 = 1;
  return AgmsShape{s0, s1};
}

AgmsSketch::AgmsSketch(AgmsShape shape, std::uint64_t seed)
    : shape_(shape), seed_(seed), counters_(shape.counters(), 0) {
  if (shape.s0 == 0 || shape.s1 == 0) {
    throw std::invalid_argument("AGMS shape must be positive");
  }
  common::Xoshiro256 rng(seed);
  xi_.reserve(shape.counters());
  for (std::size_t i = 0; i < shape.counters(); ++i) xi_.emplace_back(rng);
}

void AgmsSketch::update(std::uint64_t key, std::int64_t weight) {
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    counters_[i] += weight * xi_[i].sign(key);
  }
}

void AgmsSketch::update_batch(std::span<const std::uint64_t> keys,
                              std::int64_t weight) {
  // Pass 1 per chunk: reduce each key to its powers mod 2^61-1 once,
  // instead of once per counter (SoA layout for the simd:: kernels).
  // Pass 2 sweeps the counter grid in the outer loop so each counter is
  // read and written exactly once per chunk; the per-counter sign total is
  // the branchless parity sum sum_j sign_j == 2 * sum_j bit_j - n, with
  // the bit count produced by the dispatched kernel (exact canonical
  // residues, so identical at every level). Integer addition commutes, so
  // this reordering reproduces the scalar path's counters exactly.
  for (std::size_t base = 0; base < keys.size(); base += kBatchChunk) {
    const std::size_t n = std::min(kBatchChunk, keys.size() - base);
    x1_scratch_.resize(n);
    x2_scratch_.resize(n);
    x3_scratch_.resize(n);
    common::simd::m61_key_powers(keys.data() + base, n, x1_scratch_.data(),
                                 x2_scratch_.data(), x3_scratch_.data());
    for (std::size_t i = 0; i < counters_.size(); ++i) {
      const std::uint64_t bits = common::simd::m61_poly_parity_sum(
          xi_[i].coefficients().data(), x1_scratch_.data(), x2_scratch_.data(),
          x3_scratch_.data(), n);
      counters_[i] += weight * (2 * static_cast<std::int64_t>(bits) -
                                static_cast<std::int64_t>(n));
    }
  }
}

double AgmsSketch::estimate_join(const AgmsSketch& f, const AgmsSketch& g) {
  assert(f.shape_.s0 == g.shape_.s0 && f.shape_.s1 == g.shape_.s1);
  assert(f.seed_ == g.seed_);
  std::vector<double>& row_means = f.estimate_scratch_;
  row_means.clear();
  row_means.reserve(f.shape_.s0);
  for (std::uint32_t r = 0; r < f.shape_.s0; ++r) {
    double acc = 0.0;
    for (std::uint32_t c = 0; c < f.shape_.s1; ++c) {
      const std::size_t i = static_cast<std::size_t>(r) * f.shape_.s1 + c;
      acc += static_cast<double>(f.counters_[i]) * static_cast<double>(g.counters_[i]);
    }
    row_means.push_back(acc / static_cast<double>(f.shape_.s1));
  }
  return median_in_place(row_means);
}

void AgmsSketch::merge(const AgmsSketch& other) {
  assert(seed_ == other.seed_);
  assert(counters_.size() == other.counters_.size());
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    counters_[i] += other.counters_[i];
  }
}

void AgmsSketch::serialize(common::BufferWriter& out) const {
  out.write_u32(shape_.s0);
  out.write_u32(shape_.s1);
  out.write_u64(seed_);
  for (std::int64_t c : counters_) out.write_i64(c);
}

common::Result<AgmsSketch> AgmsSketch::deserialize(common::BufferReader& in) {
  auto s0 = in.read_u32();
  if (!s0) return s0.status();
  auto s1 = in.read_u32();
  if (!s1) return s1.status();
  auto seed = in.read_u64();
  if (!seed) return seed.status();
  if (s0.value() == 0 || s1.value() == 0 ||
      static_cast<std::size_t>(s0.value()) * s1.value() > (1u << 24)) {
    return common::Status(common::ErrorCode::kDataLoss, "implausible AGMS shape");
  }
  AgmsSketch sketch(AgmsShape{s0.value(), s1.value()}, seed.value());
  for (auto& c : sketch.counters_) {
    auto v = in.read_i64();
    if (!v) return v.status();
    c = v.value();
  }
  return sketch;
}

void AgmsSketch::set_counters(std::vector<std::int64_t> counters) {
  assert(counters.size() == counters_.size());
  counters_ = std::move(counters);
}

FastAgmsSketch::FastAgmsSketch(std::uint32_t rows, std::uint32_t buckets,
                               std::uint64_t seed)
    : rows_(rows), buckets_(buckets), seed_(seed),
      counters_(static_cast<std::size_t>(rows) * buckets, 0) {
  if (rows == 0 || buckets == 0) {
    throw std::invalid_argument("FastAgms shape must be positive");
  }
  common::Xoshiro256 rng(seed);
  bucket_hash_.reserve(rows);
  sign_hash_.reserve(rows);
  for (std::uint32_t r = 0; r < rows; ++r) {
    bucket_hash_.emplace_back(rng);
    sign_hash_.emplace_back(rng);
  }
}

void FastAgmsSketch::update(std::uint64_t key, std::int64_t weight) {
  for (std::uint32_t r = 0; r < rows_; ++r) {
    const std::uint64_t b = bucket_hash_[r].bucket(key, buckets_);
    counters_[static_cast<std::size_t>(r) * buckets_ + b] +=
        weight * sign_hash_[r].sign(key);
  }
}

void FastAgmsSketch::update_batch(std::span<const std::uint64_t> keys,
                                  std::int64_t weight) {
  // Pass 1 per chunk: reduce each key to its powers mod 2^61-1 once,
  // shared by both hash families across every row. Pass 2 sweeps rows in
  // the outer loop through the fused row kernel: both polynomial hashes,
  // the bucket reduction, and the signed delta evaluate vectorized, with
  // only the duplicate-prone counter adds themselves scalar. The scalar
  // path applies per key with rows inner; all touches are exact integer
  // adds, which commute, so the row-major order is bit-identical at every
  // dispatch level.
  for (std::size_t base = 0; base < keys.size(); base += kBatchChunk) {
    const std::size_t n = std::min(kBatchChunk, keys.size() - base);
    x1_scratch_.resize(n);
    x2_scratch_.resize(n);
    x3_scratch_.resize(n);
    common::simd::m61_key_powers(keys.data() + base, n, x1_scratch_.data(),
                                 x2_scratch_.data(), x3_scratch_.data());
    for (std::uint32_t r = 0; r < rows_; ++r) {
      common::simd::fast_agms_update_row(
          bucket_hash_[r].coefficients().data(),
          sign_hash_[r].coefficients().data(), x1_scratch_.data(),
          x2_scratch_.data(), x3_scratch_.data(), n, buckets_, weight,
          counters_.data() + static_cast<std::size_t>(r) * buckets_);
    }
  }
}

double FastAgmsSketch::estimate_join(const FastAgmsSketch& f,
                                     const FastAgmsSketch& g) {
  assert(f.rows_ == g.rows_ && f.buckets_ == g.buckets_ && f.seed_ == g.seed_);
  std::vector<double>& row_products = f.estimate_scratch_;
  row_products.clear();
  row_products.reserve(f.rows_);
  for (std::uint32_t r = 0; r < f.rows_; ++r) {
    double acc = 0.0;
    for (std::uint32_t b = 0; b < f.buckets_; ++b) {
      const std::size_t i = static_cast<std::size_t>(r) * f.buckets_ + b;
      acc += static_cast<double>(f.counters_[i]) * static_cast<double>(g.counters_[i]);
    }
    row_products.push_back(acc);
  }
  return median_in_place(row_products);
}

double median(std::vector<double> values) {
  return median_in_place(values);
}

double median_in_place(std::span<double> values) {
  assert(!values.empty());
  const std::size_t mid = values.size() / 2;
  std::nth_element(values.begin(), values.begin() + static_cast<std::ptrdiff_t>(mid),
                   values.end());
  if (values.size() % 2 == 1) return values[mid];
  const double upper = values[mid];
  const double lower =
      *std::max_element(values.begin(), values.begin() + static_cast<std::ptrdiff_t>(mid));
  return 0.5 * (lower + upper);
}

}  // namespace dsjoin::sketch
