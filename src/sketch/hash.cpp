#include "dsjoin/sketch/hash.hpp"

namespace dsjoin::sketch {

FourWiseHash::FourWiseHash(common::Xoshiro256& rng) {
  for (auto& c : coeff_) c = rng.next() % kMersenne61;
  while (coeff_[3] == 0) coeff_[3] = rng.next() % kMersenne61;
}

}  // namespace dsjoin::sketch
