// AGMS sketches (Alon-Gibbons-Matias-Szegedy [1]) for join-size estimation.
//
// The SKCH baseline of the paper's evaluation estimates |R_i join S_j| from
// compact randomized sketches. An AGMS sketch is an s0 x s1 grid of atomic
// estimators; each atomic counter is sum_v f(v) * xi(v) with xi a 4-wise
// independent +/-1 variable. The inner product of two atomic counters built
// with the *same* xi is an unbiased estimator of the join size
// sum_v f(v) g(v); averaging s1 copies controls variance and the median of
// s0 averages boosts confidence. Section 6 of the paper keeps s0 : s1 = 5:1.
//
// Sketches are linear, so sliding-window maintenance is a +1 update for the
// arriving tuple and a -1 update for the expiring one.
//
// Fast-AGMS (Cormode-Garofalakis) is provided as an extension/ablation: one
// bucket update per row instead of touching every counter, at equal space.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dsjoin/common/rng.hpp"
#include "dsjoin/common/serialize.hpp"
#include "dsjoin/common/status.hpp"
#include "dsjoin/sketch/hash.hpp"

namespace dsjoin::sketch {

/// Geometry of an AGMS sketch.
struct AgmsShape {
  std::uint32_t s0 = 5;  ///< rows whose averages are median-combined
  std::uint32_t s1 = 1;  ///< atomic estimators averaged per row

  std::size_t counters() const noexcept {
    return static_cast<std::size_t>(s0) * s1;
  }

  /// Shape with s0:s1 = 5:1 (the paper's setting) using at most
  /// `total_counters` counters.
  static AgmsShape for_budget(std::size_t total_counters);
};

/// Classic AGMS sketch. Every update touches all s0*s1 counters, matching
/// the cost profile the paper reports in Table 1.
class AgmsSketch {
 public:
  /// Two sketches can be combined (inner product / merge) only if they were
  /// built from the same `seed` (identical hash functions) and shape.
  AgmsSketch(AgmsShape shape, std::uint64_t seed);

  /// Adds `weight` copies of `key` (negative weight = deletion).
  void update(std::uint64_t key, std::int64_t weight = 1);

  /// Adds `weight` copies of every key in `keys`. Counter updates are
  /// integer additions, so reordering them is exact: the batch path hashes
  /// all keys first (shared key powers into a scratch buffer), then sweeps
  /// the counter grid once, accumulating each counter's total sign in a
  /// register. State after the call is bit-identical to calling update()
  /// per key.
  void update_batch(std::span<const std::uint64_t> keys,
                    std::int64_t weight = 1);

  /// Unbiased join-size estimate sum_v f(v)*g(v): mean within rows, median
  /// across rows. Shapes and seeds must match. Uses f's preallocated
  /// scratch — sketches are per-node state, not shared across threads.
  static double estimate_join(const AgmsSketch& f, const AgmsSketch& g);

  /// Self-join size (second frequency moment F2) estimate.
  double estimate_self_join() const { return estimate_join(*this, *this); }

  /// Adds another sketch built with the same seed/shape (stream union).
  void merge(const AgmsSketch& other);

  const AgmsShape& shape() const noexcept { return shape_; }
  std::uint64_t seed() const noexcept { return seed_; }
  /// Wire size: one i64 per counter.
  std::size_t wire_bytes() const noexcept { return counters_.size() * 8; }

  void serialize(common::BufferWriter& out) const;
  /// Reconstructs a sketch from the wire form; hash functions are re-derived
  /// from the embedded seed.
  static common::Result<AgmsSketch> deserialize(common::BufferReader& in);

  const std::vector<std::int64_t>& counters() const noexcept { return counters_; }

  /// Replaces the counter grid (wire decoding); size must match the shape.
  void set_counters(std::vector<std::int64_t> counters);

 private:
  AgmsShape shape_;
  std::uint64_t seed_;
  std::vector<FourWiseHash> xi_;         // one per (row, column)
  std::vector<std::int64_t> counters_;   // row-major s0 x s1
  // Batch pass 1 output: key powers mod 2^61-1 in structure-of-arrays
  // form, the layout the simd:: kernels consume.
  std::vector<std::uint64_t> x1_scratch_, x2_scratch_, x3_scratch_;
  mutable std::vector<double> estimate_scratch_; // row means, reused
};

/// Fast-AGMS: per row, the key selects one bucket (2-wise hash) and adds its
/// +/-1 sign. Update cost O(s0) instead of O(s0*s1) at equal space.
class FastAgmsSketch {
 public:
  /// @param rows    number of independent rows (median-combined)
  /// @param buckets counters per row
  FastAgmsSketch(std::uint32_t rows, std::uint32_t buckets, std::uint64_t seed);

  void update(std::uint64_t key, std::int64_t weight = 1);

  /// Adds `weight` copies of every key. Pass 1 reduces each key to its
  /// powers mod 2^61-1 once; pass 2 sweeps rows in the outer loop so each
  /// row's hash pair stays in registers and its 8*buckets-byte counter
  /// segment stays cache-resident. Counter updates are exact integer adds,
  /// which commute, so the row-major order is bit-identical to per-key
  /// update().
  void update_batch(std::span<const std::uint64_t> keys,
                    std::int64_t weight = 1);

  /// Join-size estimate: per-row inner product, median across rows. Uses
  /// f's preallocated scratch — sketches are per-node, not shared.
  static double estimate_join(const FastAgmsSketch& f, const FastAgmsSketch& g);

  double estimate_self_join() const { return estimate_join(*this, *this); }

  std::uint32_t rows() const noexcept { return rows_; }
  std::uint32_t buckets() const noexcept { return buckets_; }
  std::size_t wire_bytes() const noexcept { return counters_.size() * 8; }

  const std::vector<std::int64_t>& counters() const noexcept { return counters_; }

 private:
  std::uint32_t rows_;
  std::uint32_t buckets_;
  std::uint64_t seed_;
  std::vector<FourWiseHash> bucket_hash_;  // one per row
  std::vector<FourWiseHash> sign_hash_;    // one per row
  std::vector<std::int64_t> counters_;     // row-major rows x buckets
  // Batch pass 1 output (SoA key powers) consumed by the fused per-row
  // simd:: kernel; the counter scatter itself stays scalar inside it.
  std::vector<std::uint64_t> x1_scratch_, x2_scratch_, x3_scratch_;
  mutable std::vector<double> estimate_scratch_; // row products, reused
};

/// Median of a small vector (copies; intended for s0-sized inputs).
double median(std::vector<double> values);

/// Median computed in place over caller-owned storage (no allocation).
double median_in_place(std::span<double> values);

}  // namespace dsjoin::sketch
