// Hash families for sketches and Bloom filters.
//
// AGMS sketches [1] require 4-wise independent +/-1 variables; we implement
// them as degree-3 polynomials over the Mersenne prime p = 2^61 - 1 (the
// classic Carter-Wegman construction), taking the low bit as the sign.
// Bloom filters need only well-mixed indices; those come from the cheaper
// double-hashing scheme over two SplitMix64-derived mixes.
#pragma once

#include <array>
#include <bit>
#include <cstdint>

#include "dsjoin/common/rng.hpp"
#include "dsjoin/common/simd.hpp"

namespace dsjoin::sketch {

/// Remainder by a fixed range for the batch hot paths: power-of-two ranges
/// (the common bucket/counter geometry) reduce with a mask, everything else
/// falls back to the hardware divide. mod(x) == x % range for every x, so
/// batch paths using it stay bit-identical to the scalar `%`.
class RangeReducer {
 public:
  explicit RangeReducer(std::uint64_t range) noexcept
      : range_(range),
        mask_(range != 0 && std::has_single_bit(range) ? range - 1 : 0) {}

  std::uint64_t range() const noexcept { return range_; }

  std::uint64_t mod(std::uint64_t x) const noexcept {
    return mask_ != 0 ? (x & mask_) : x % range_;
  }

 private:
  std::uint64_t range_;
  std::uint64_t mask_;  // range - 1 when range is a power of two, else 0
};

/// The Mersenne prime 2^61 - 1 used by the polynomial family.
inline constexpr std::uint64_t kMersenne61 = (std::uint64_t{1} << 61) - 1;

/// Multiplies two residues mod 2^61-1 without overflow (128-bit intermediate).
constexpr std::uint64_t mul_mod_m61(std::uint64_t a, std::uint64_t b) noexcept {
  __extension__ using uint128 = unsigned __int128;
  const uint128 prod = static_cast<uint128>(a) * static_cast<uint128>(b);
  std::uint64_t lo = static_cast<std::uint64_t>(prod & kMersenne61);
  std::uint64_t hi = static_cast<std::uint64_t>(prod >> 61);
  std::uint64_t r = lo + hi;
  if (r >= kMersenne61) r -= kMersenne61;
  return r;
}

/// Shared powers x, x^2, x^3 (mod 2^61-1) of one key, computed once and
/// reused across every polynomial hash evaluated on that key. In batch
/// updates this both amortizes the reduction of the raw key and turns the
/// Horner dependency chain into independent multiplies.
struct KeyPowers {
  std::uint64_t x1, x2, x3;

  static KeyPowers of(std::uint64_t x) noexcept {
    const std::uint64_t x1 = x % kMersenne61;
    const std::uint64_t x2 = mul_mod_m61(x1, x1);
    return KeyPowers{x1, x2, mul_mod_m61(x2, x1)};
  }
};

/// Degree-3 polynomial hash over GF(2^61-1): 4-wise independent.
class FourWiseHash {
 public:
  /// Draws random coefficients (a3 forced nonzero) from the given generator.
  explicit FourWiseHash(common::Xoshiro256& rng);

  /// Polynomial value in [0, 2^61-1).
  std::uint64_t eval(std::uint64_t x) const noexcept {
    const std::uint64_t xm = x % kMersenne61;
    std::uint64_t acc = coeff_[3];
    acc = mul_mod_m61(acc, xm);
    acc += coeff_[2];
    if (acc >= kMersenne61) acc -= kMersenne61;
    acc = mul_mod_m61(acc, xm);
    acc += coeff_[1];
    if (acc >= kMersenne61) acc -= kMersenne61;
    acc = mul_mod_m61(acc, xm);
    acc += coeff_[0];
    if (acc >= kMersenne61) acc -= kMersenne61;
    return acc;
  }

  /// eval() from precomputed key powers. The power-basis sum and the
  /// Horner chain reduce to the same fully-reduced residue in [0, 2^61-1),
  /// so the result is identical to eval(x) — but the three multiplies are
  /// independent (latency-hidden), the key reduction is amortized, and the
  /// products accumulate lazily in 128 bits (each is < 2^122, so the
  /// four-term sum is < 2^124 and cannot overflow), replacing three
  /// intermediate reductions with one final double-fold.
  std::uint64_t eval_powers(const KeyPowers& p) const noexcept {
    __extension__ using uint128 = unsigned __int128;
    uint128 s = static_cast<uint128>(coeff_[3]) * p.x3;
    s += static_cast<uint128>(coeff_[2]) * p.x2;
    s += static_cast<uint128>(coeff_[1]) * p.x1;
    s += coeff_[0];
    // s < 2^124: first fold leaves r < 2^61 + 2^63 (fits 64 bits), second
    // leaves r < 2^61 + 7, so one conditional subtract reaches [0, p).
    std::uint64_t r = static_cast<std::uint64_t>(s & kMersenne61) +
                      static_cast<std::uint64_t>(s >> 61);
    r = (r & kMersenne61) + (r >> 61);
    if (r >= kMersenne61) r -= kMersenne61;
    return r;
  }

  /// The 4-wise independent +/-1 variable AGMS needs.
  int sign(std::uint64_t x) const noexcept {
    return (eval(x) & 1u) ? 1 : -1;
  }

  /// sign() from precomputed key powers (identical result).
  int sign_powers(const KeyPowers& p) const noexcept {
    return (eval_powers(p) & 1u) ? 1 : -1;
  }

  /// Bucket index in [0, buckets) (used by the Fast-AGMS variant).
  std::uint64_t bucket(std::uint64_t x, std::uint64_t buckets) const noexcept {
    return eval(x) % buckets;
  }

  /// The canonical polynomial coefficients c0..c3 (each < 2^61-1), exposed
  /// for the simd:: batch kernels, which evaluate the same polynomial to
  /// the same canonical residue as eval()/eval_powers().
  const std::array<std::uint64_t, 4>& coefficients() const noexcept {
    return coeff_;
  }

 private:
  std::array<std::uint64_t, 4> coeff_;
};

/// Two independent 64-bit mixes for double hashing: index_i = h1 + i*h2.
/// Kirsch-Mitzenmacher double hashing preserves Bloom filter asymptotics
/// with only two hash evaluations per key.
class DoubleHash {
 public:
  explicit DoubleHash(common::Xoshiro256& rng)
      : seed1_(rng.next()), seed2_(rng.next() | 1u) {}

  /// Both mixes of one key, computed once and reused for every probe of
  /// that key (the scalar probe() recomputes them per probe).
  /// index(i, m) reproduces probe(key, i, m.range()) exactly.
  struct Prepared {
    std::uint64_t h1, h2;

    std::uint64_t index(std::uint32_t i, const RangeReducer& m) const noexcept {
      return m.mod(h1 + static_cast<std::uint64_t>(i) * h2);
    }
  };

  Prepared prepare(std::uint64_t key) const noexcept {
    return Prepared{mix(key ^ seed1_), mix(key ^ seed2_) | 1u};
  }

  /// Both mixes of n keys at once via the dispatched simd:: kernel;
  /// h1[j]/h2[j] are exactly prepare(keys[j]) (the kernel's mix is the
  /// same SplitMix64 finalizer, exact at every level).
  void prepare_batch(const std::uint64_t* keys, std::size_t n,
                     std::uint64_t* h1, std::uint64_t* h2) const noexcept {
    common::simd::double_hash_prepare(seed1_, seed2_, keys, n, h1, h2);
  }

  /// i-th probe position in [0, range).
  std::uint64_t probe(std::uint64_t key, std::uint32_t i,
                      std::uint64_t range) const noexcept {
    const std::uint64_t h1 = mix(key ^ seed1_);
    const std::uint64_t h2 = mix(key ^ seed2_) | 1u;  // odd => full period
    return (h1 + static_cast<std::uint64_t>(i) * h2) % range;
  }

 private:
  static constexpr std::uint64_t mix(std::uint64_t z) noexcept {
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  std::uint64_t seed1_;
  std::uint64_t seed2_;
};

}  // namespace dsjoin::sketch
