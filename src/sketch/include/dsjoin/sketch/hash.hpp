// Hash families for sketches and Bloom filters.
//
// AGMS sketches [1] require 4-wise independent +/-1 variables; we implement
// them as degree-3 polynomials over the Mersenne prime p = 2^61 - 1 (the
// classic Carter-Wegman construction), taking the low bit as the sign.
// Bloom filters need only well-mixed indices; those come from the cheaper
// double-hashing scheme over two SplitMix64-derived mixes.
#pragma once

#include <array>
#include <cstdint>

#include "dsjoin/common/rng.hpp"

namespace dsjoin::sketch {

/// The Mersenne prime 2^61 - 1 used by the polynomial family.
inline constexpr std::uint64_t kMersenne61 = (std::uint64_t{1} << 61) - 1;

/// Multiplies two residues mod 2^61-1 without overflow (128-bit intermediate).
constexpr std::uint64_t mul_mod_m61(std::uint64_t a, std::uint64_t b) noexcept {
  __extension__ using uint128 = unsigned __int128;
  const uint128 prod = static_cast<uint128>(a) * static_cast<uint128>(b);
  std::uint64_t lo = static_cast<std::uint64_t>(prod & kMersenne61);
  std::uint64_t hi = static_cast<std::uint64_t>(prod >> 61);
  std::uint64_t r = lo + hi;
  if (r >= kMersenne61) r -= kMersenne61;
  return r;
}

/// Degree-3 polynomial hash over GF(2^61-1): 4-wise independent.
class FourWiseHash {
 public:
  /// Draws random coefficients (a3 forced nonzero) from the given generator.
  explicit FourWiseHash(common::Xoshiro256& rng);

  /// Polynomial value in [0, 2^61-1).
  std::uint64_t eval(std::uint64_t x) const noexcept {
    const std::uint64_t xm = x % kMersenne61;
    std::uint64_t acc = coeff_[3];
    acc = mul_mod_m61(acc, xm);
    acc += coeff_[2];
    if (acc >= kMersenne61) acc -= kMersenne61;
    acc = mul_mod_m61(acc, xm);
    acc += coeff_[1];
    if (acc >= kMersenne61) acc -= kMersenne61;
    acc = mul_mod_m61(acc, xm);
    acc += coeff_[0];
    if (acc >= kMersenne61) acc -= kMersenne61;
    return acc;
  }

  /// The 4-wise independent +/-1 variable AGMS needs.
  int sign(std::uint64_t x) const noexcept {
    return (eval(x) & 1u) ? 1 : -1;
  }

  /// Bucket index in [0, buckets) (used by the Fast-AGMS variant).
  std::uint64_t bucket(std::uint64_t x, std::uint64_t buckets) const noexcept {
    return eval(x) % buckets;
  }

 private:
  std::array<std::uint64_t, 4> coeff_;
};

/// Two independent 64-bit mixes for double hashing: index_i = h1 + i*h2.
/// Kirsch-Mitzenmacher double hashing preserves Bloom filter asymptotics
/// with only two hash evaluations per key.
class DoubleHash {
 public:
  explicit DoubleHash(common::Xoshiro256& rng)
      : seed1_(rng.next()), seed2_(rng.next() | 1u) {}

  /// i-th probe position in [0, range).
  std::uint64_t probe(std::uint64_t key, std::uint32_t i,
                      std::uint64_t range) const noexcept {
    const std::uint64_t h1 = mix(key ^ seed1_);
    const std::uint64_t h2 = mix(key ^ seed2_) | 1u;  // odd => full period
    return (h1 + static_cast<std::uint64_t>(i) * h2) % range;
  }

 private:
  static constexpr std::uint64_t mix(std::uint64_t z) noexcept {
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  std::uint64_t seed1_;
  std::uint64_t seed2_;
};

}  // namespace dsjoin::sketch
