// Bloom filters for the BLOOM baseline (Broder-Mitzenmacher [5]).
//
// Each node maintains a *counting* Bloom filter over its sliding window
// (inserts on arrival, decrements on expiry) and periodically ships a plain
// bit-vector snapshot to its peers; arriving tuples are tested against peer
// snapshots to decide forwarding, exactly as Section 6 describes.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dsjoin/common/rng.hpp"
#include "dsjoin/common/serialize.hpp"
#include "dsjoin/common/status.hpp"
#include "dsjoin/sketch/hash.hpp"

namespace dsjoin::sketch {

/// Number of hash functions minimizing the false-positive rate for m bits
/// and n expected keys: round(m/n * ln 2), clamped to [1, 16].
std::uint32_t optimal_hash_count(std::size_t bits, std::size_t expected_keys) noexcept;

/// Theoretical false-positive rate (1 - e^{-kn/m})^k.
double bloom_false_positive_rate(std::size_t bits, std::uint32_t hashes,
                                 std::size_t keys) noexcept;

/// Immutable bit-vector Bloom filter — the wire snapshot.
class BloomFilter {
 public:
  /// Empty filter with the given geometry. `seed` fixes the hash functions;
  /// a snapshot only tests correctly against filters using the same seed.
  BloomFilter(std::size_t bits, std::uint32_t hashes, std::uint64_t seed);

  void insert(std::uint64_t key);
  /// True if the key may be present (no false negatives).
  bool contains(std::uint64_t key) const;

  std::size_t bit_count() const noexcept { return bits_; }
  std::uint32_t hash_count() const noexcept { return hashes_; }
  /// Number of set bits.
  std::size_t popcount() const noexcept;
  /// Empirical fill ratio -> estimated false-positive probability.
  double estimated_fpp() const noexcept;

  std::size_t wire_bytes() const noexcept { return words_.size() * 8 + 24; }
  void serialize(common::BufferWriter& out) const;
  static common::Result<BloomFilter> deserialize(common::BufferReader& in);

 private:
  friend class CountingBloomFilter;

  std::size_t bits_;
  std::uint32_t hashes_;
  std::uint64_t seed_;
  DoubleHash hash_;
  std::vector<std::uint64_t> words_;
};

/// Counting Bloom filter: supports erase, so it can track a sliding window.
class CountingBloomFilter {
 public:
  /// @param counters number of 16-bit counters (the "m" of the filter).
  CountingBloomFilter(std::size_t counters, std::uint32_t hashes,
                      std::uint64_t seed);

  void insert(std::uint64_t key);
  /// Decrements the key's counters. Erasing a key that was never inserted
  /// corrupts the filter (standard counting-Bloom caveat); callers pair
  /// every erase with a prior insert. Saturated counters are left pinned.
  void erase(std::uint64_t key);
  bool contains(std::uint64_t key) const;

  /// Applies one insert (+1) or erase (-1) per key, strictly in key order.
  /// Each key's two SplitMix mixes are computed once and shared by all of
  /// its probes (the tuple-at-a-time path recomputes both per probe).
  /// Mixed inserts and erases make counter updates order-dependent under
  /// the saturate/pin clamps, so touches keep the exact (key, probe)
  /// interleaving — state after the call is bit-identical to per-key
  /// insert()/erase() calls.
  ///
  /// Batches stay on the per-key path at every SIMD level: the operator is
  /// bound by the k random counter touches per key, and staging
  /// vector-hashed probe indices through a table costs more memory traffic
  /// than the hashing saves while breaking the hash/touch latency overlap
  /// the per-key order gets for free (DESIGN.md section 13).
  void apply_batch(std::span<const std::uint64_t> keys,
                   std::span<const std::int32_t> deltas);

  /// apply_batch with all +1 deltas (saturating counters reach
  /// min(c + count, max) regardless of order, so any order is exact).
  void insert_batch(std::span<const std::uint64_t> keys);
  /// apply_batch with all -1 deltas (pinned counters stay pinned, the rest
  /// reach max(c - count, 0)).
  void erase_batch(std::span<const std::uint64_t> keys);

  std::size_t counter_count() const noexcept { return counters_.size(); }
  std::uint32_t hash_count() const noexcept { return hashes_; }
  const std::vector<std::uint16_t>& counters() const noexcept { return counters_; }

  /// Plain bit-vector snapshot (counter > 0 -> bit set) sharing this
  /// filter's geometry and seed; this is what goes on the wire.
  BloomFilter snapshot() const;

 private:
  /// Per-key batch bodies: one Prepared per key, probes in key order.
  void insert_keys_scalar(const std::uint64_t* keys, std::size_t n);
  void erase_keys_scalar(const std::uint64_t* keys, std::size_t n);

  std::uint32_t hashes_;
  std::uint64_t seed_;
  DoubleHash hash_;
  RangeReducer counters_mod_;  // exact `% counter_count()` for batches
  std::vector<std::uint16_t> counters_;
};

}  // namespace dsjoin::sketch
