// Quickstart: run one distributed approximate window join and compare the
// DFTT algorithm against the exact BASE broadcast.
//
//   ./quickstart [--nodes 6] [--workload ZIPF] [--policy DFTT] ...
//
// Prints, for the chosen policy and for BASE: epsilon, messages per result
// tuple, and throughput — the paper's three headline metrics (Section 6).
#include <cstdint>
#include <cstdio>
#include <stdexcept>

#include "dsjoin/common/cli.hpp"
#include "dsjoin/common/table.hpp"
#include "dsjoin/core/system.hpp"
#include "dsjoin/net/stats.hpp"

using namespace dsjoin;

int main(int argc, char** argv) {
  common::CliFlags flags(
      "dsjoin quickstart: one approximate distributed window join vs BASE");
  flags.add_int("nodes", 6, "number of processing nodes")
      .add_string("workload", "ZIPF", "UNI | ZIPF | FIN | NWRK")
      .add_string("policy", "DFTT", core::policy_names_csv())
      .add_int("tuples", 3000, "tuples per node per stream side")
      .add_double("throttle", 0.5, "forwarding budget knob in [0,1]")
      .add_int("kappa", 256, "DFT compression factor")
      .add_int("tolerance", 2, "DFTT membership tolerance (+/- keys)")
      .add_double("noise", 0.15, "background cold-tuple fraction")
      .add_int("seed", 42, "experiment seed")
      .add_int("workers", 0,
               "execution strands for the simulator (0 = serial driver; "
               "k >= 1 is bit-identical to serial unless backpressure "
               "engages, see DESIGN.md section 6)")
      .add_string("queries", "",
                  "registered join queries served against one shared "
                  "summary substrate, semicolon-separated "
                  "POLICY[:throttle[:half_width_s]] specs (DESIGN.md "
                  "section 15); empty = single-query mode");
  if (auto status = flags.parse(argc, argv); !status) {
    if (status.code() != common::ErrorCode::kFailedPrecondition) {
      std::fprintf(stderr, "error: %s\n", status.to_string().c_str());
      return 1;
    }
    return 0;
  }

  core::SystemConfig config;
  config.nodes = static_cast<std::uint32_t>(flags.get_int("nodes"));
  config.workload = flags.get_string("workload");
  try {
    config.policy = core::policy_from_string(flags.get_string("policy"));
  } catch (const std::invalid_argument& err) {
    std::fprintf(stderr, "error: %s\n", err.what());
    return 1;
  }
  config.tuples_per_node = static_cast<std::uint64_t>(flags.get_int("tuples"));
  config.throttle = flags.get_double("throttle");
  config.kappa = static_cast<double>(flags.get_int("kappa"));
  config.membership_tolerance = flags.get_int("tolerance");
  config.noise = flags.get_double("noise");
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  const std::int64_t workers = flags.get_int("workers");
  if (workers < 0) {
    std::fprintf(stderr, "error: --workers must be >= 0, got %lld\n",
                 static_cast<long long>(workers));
    return 1;
  }
  config.worker_threads = static_cast<std::uint32_t>(workers);
  const auto queries = core::parse_queries(flags.get_string("queries"), config);
  if (!queries) {
    std::fprintf(stderr, "error: %s\n", queries.status().message().c_str());
    return 1;
  }
  config.queries = queries.value();

  std::printf("Running %s on %s with %u nodes (%llu tuples/node/side)...\n",
              core::to_string(config.policy), config.workload.c_str(),
              config.nodes,
              static_cast<unsigned long long>(config.tuples_per_node));
  const auto approx = core::run_experiment(config);

  std::printf("Running BASE reference...\n");
  core::SystemConfig base_config = config;
  base_config.policy = core::PolicyKind::kBase;
  const auto base = core::run_experiment(base_config);

  common::TablePrinter table(
      "quickstart: " + flags.get_string("policy") + " vs BASE",
      {"metric", flags.get_string("policy"), "BASE"});
  table.add("epsilon (missed results)", approx.epsilon, base.epsilon);
  table.add("messages per result tuple", approx.messages_per_result,
            base.messages_per_result);
  table.add("results per second", approx.results_per_second,
            base.results_per_second);
  table.add("total frames", approx.traffic.total_frames(),
            base.traffic.total_frames());
  table.add("exact pairs |Psi|", approx.exact_pairs, base.exact_pairs);
  table.add("reported pairs", approx.reported_pairs, base.reported_pairs);
  table.add("summary byte share", approx.summary_byte_fraction,
            base.summary_byte_fraction);
  table.add("tuple frames", approx.traffic.frames(net::FrameKind::kTuple),
            base.traffic.frames(net::FrameKind::kTuple));
  table.add("summary frames", approx.traffic.frames(net::FrameKind::kSummary),
            base.traffic.frames(net::FrameKind::kSummary));
  table.add("result frames", approx.traffic.frames(net::FrameKind::kResult),
            base.traffic.frames(net::FrameKind::kResult));
  table.add("makespan (virtual s)", approx.makespan_s, base.makespan_s);
  table.print();

  if (approx.per_query.size() > 1) {
    std::printf("\nPer-query breakdown (shared substrate, one ingest per "
                "tuple — DESIGN.md section 15):\n");
    for (std::size_t q = 0; q < approx.per_query.size(); ++q) {
      const auto& query = approx.per_query[q];
      std::printf(
          "  query %u [%s]: %llu reported (exact %llu)  epsilon %.4f\n",
          query.query_id, core::to_string(config.queries[q].policy),
          static_cast<unsigned long long>(query.reported_pairs),
          static_cast<unsigned long long>(query.exact_pairs), query.epsilon);
    }
  }

  std::printf(
      "\nReading the table: the approximate policy should report most of\n"
      "BASE's pairs (low epsilon) while sending several times fewer\n"
      "messages per result tuple.\n");
  return 0;
}
