// Stock arbitrage monitoring — the paper's financial motivating scenario.
//
// A set of exchanges (nodes) each publish bid (stream R) and ask (stream S)
// quotes for mostly-regional symbol sets. An arbitrage opportunity is a
// bid/ask price cross between two exchanges within a time window — exactly
// a distributed sliding-window join on the quoted price.
//
// The example runs the DFTT algorithm over the FIN workload, reports how
// many cross-exchange opportunities were detected versus the exact count,
// and breaks the traffic down, showing the system is viable at a fraction
// of BASE's bandwidth.
#include <cstdio>

#include "dsjoin/common/cli.hpp"
#include "dsjoin/common/table.hpp"
#include "dsjoin/core/system.hpp"
#include "dsjoin/net/stats.hpp"

using namespace dsjoin;

int main(int argc, char** argv) {
  common::CliFlags flags("dsjoin example: cross-exchange arbitrage detection");
  flags.add_int("exchanges", 8, "number of exchanges (nodes)")
      .add_int("quotes", 2500, "quotes per exchange per stream side")
      .add_double("window_s", 10.0, "price-cross window half-width (seconds)")
      .add_double("throttle", 0.5, "forwarding budget knob")
      .add_int("seed", 7, "experiment seed");
  if (auto s = flags.parse(argc, argv); !s) {
    return s.code() == common::ErrorCode::kFailedPrecondition ? 0 : 1;
  }

  core::SystemConfig config;
  config.workload = "FIN";
  config.policy = core::PolicyKind::kDftt;
  config.nodes = static_cast<std::uint32_t>(flags.get_int("exchanges"));
  config.regions = std::max(2u, config.nodes / 3);
  config.tuples_per_node = static_cast<std::uint64_t>(flags.get_int("quotes"));
  config.join_half_width_s = flags.get_double("window_s");
  config.throttle = flags.get_double("throttle");
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed"));

  std::printf("Monitoring %u exchanges for bid/ask crosses (DFTT, window "
              "+/-%.0fs)...\n",
              config.nodes, config.join_half_width_s);
  const auto result = core::run_experiment(config);

  core::SystemConfig base_config = config;
  base_config.policy = core::PolicyKind::kBase;
  const auto base = core::run_experiment(base_config);

  common::TablePrinter table("arbitrage detection: DFTT vs exact broadcast",
                             {"metric", "DFTT", "BASE"});
  table.add("opportunities detected", result.reported_pairs, base.reported_pairs);
  table.add("opportunities (oracle)", result.exact_pairs, base.exact_pairs);
  table.add("detection rate",
            1.0 - result.epsilon, 1.0 - base.epsilon);
  table.add("quote frames sent", result.traffic.frames(net::FrameKind::kTuple),
            base.traffic.frames(net::FrameKind::kTuple));
  table.add("bytes on the wire", result.traffic.total_bytes(),
            base.traffic.total_bytes());
  table.add("detections per second", result.results_per_second,
            base.results_per_second);
  table.print();

  std::printf("\nDFTT found %.1f%% of the opportunities using %.1f%% of "
              "BASE's bandwidth.\n",
              100.0 * (1.0 - result.epsilon),
              100.0 * static_cast<double>(result.traffic.total_bytes()) /
                  static_cast<double>(base.traffic.total_bytes()));
  return 0;
}
