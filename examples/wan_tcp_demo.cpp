// Real-socket demo: the same Node/RoutingPolicy code that runs under the
// deterministic WAN emulator, running over actual loopback TCP sockets —
// the reproduction analogue of the paper's twenty-workstation prototype.
//
// The run goes through the full distributed runtime in-process: a
// coordinator admits one daemon thread per node over a real control
// socket, the daemons mesh over loopback TCP, stream the deterministic
// arrival schedule, and ship their discovered pairs back for global
// deduplication — exactly the protocol the dsjoin_coord / dsjoin_noded
// binaries speak across processes.
#include <cstdio>
#include <stdexcept>

#include "dsjoin/common/cli.hpp"
#include "dsjoin/common/log.hpp"
#include "dsjoin/core/config.hpp"
#include "dsjoin/runtime/local.hpp"

using namespace dsjoin;

int main(int argc, char** argv) {
  common::CliFlags flags("dsjoin example: distributed runtime over real TCP");
  flags.add_int("nodes", 4, "number of daemon threads")
      .add_int("tuples", 400, "tuples per node per stream side")
      .add_double("rate", 120.0, "arrivals per node per side per second")
      .add_string("policy", "DFTT",
                  "routing policy: " + core::policy_names_csv())
      .add_bool("pace", false, "replay arrivals in real time")
      .add_bool("verbose", false, "log protocol progress");
  if (auto s = flags.parse(argc, argv); !s) {
    return s.code() == common::ErrorCode::kFailedPrecondition ? 0 : 1;
  }
  common::set_log_level(flags.get_bool("verbose") ? common::LogLevel::kInfo
                                                  : common::LogLevel::kWarn);

  core::SystemConfig config;
  config.nodes = static_cast<std::uint32_t>(flags.get_int("nodes"));
  config.regions = 2;
  try {
    config.policy = core::policy_from_string(flags.get_string("policy"));
  } catch (const std::invalid_argument& err) {
    std::fprintf(stderr, "error: %s\n", err.what());
    return 1;
  }
  config.workload = "ZIPF";
  config.tuples_per_node = static_cast<std::uint64_t>(flags.get_int("tuples"));
  config.arrivals_per_second = flags.get_double("rate");
  config.join_half_width_s = 2.0;
  config.dft_window = 512;
  config.kappa = 64.0;
  config.summary_epoch_tuples = 64;

  std::printf("Meshing %u daemon threads over loopback TCP (%s policy)...\n",
              config.nodes, core::to_string(config.policy));
  runtime::LocalOptions options;
  options.pace = flags.get_bool("pace");
  const runtime::RunReport report = runtime::run_local(config, options);

  if (!report.clean) {
    std::fprintf(stderr, "run failed: %s\n", report.error.c_str());
    return 1;
  }
  std::printf("\narrivals: %llu   exact pairs: %llu   reported: %llu\n",
              static_cast<unsigned long long>(report.total_arrivals),
              static_cast<unsigned long long>(report.exact_pairs),
              static_cast<unsigned long long>(report.reported_pairs));
  std::printf("epsilon over real sockets: %.4f   (false pairs: %llu)\n",
              report.epsilon,
              static_cast<unsigned long long>(report.false_pairs));
  std::printf("frames: %llu (%llu tuple / %llu summary / %llu result), "
              "%llu bytes\n",
              static_cast<unsigned long long>(report.traffic.total_frames()),
              static_cast<unsigned long long>(
                  report.traffic.frames(net::FrameKind::kTuple)),
              static_cast<unsigned long long>(
                  report.traffic.frames(net::FrameKind::kSummary)),
              static_cast<unsigned long long>(
                  report.traffic.frames(net::FrameKind::kResult)),
              static_cast<unsigned long long>(report.traffic.total_bytes()));
  std::puts("\nThe same Node and RoutingPolicy code ran here over real TCP");
  std::puts("that the experiments run under the deterministic WAN emulator.");
  return 0;
}
