// Real-socket demo: the same Node/RoutingPolicy code that runs under the
// deterministic WAN emulator, running over actual loopback TCP sockets —
// the reproduction analogue of the paper's twenty-workstation prototype.
//
// Four nodes live in one process, meshed over 127.0.0.1; a driver thread
// paces tuple arrivals in real time while receiver threads deliver frames.
// At the end the demo prints the same epsilon/traffic metrics as the
// simulated experiments.
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "dsjoin/common/cli.hpp"
#include "dsjoin/core/metrics.hpp"
#include "dsjoin/core/node.hpp"
#include "dsjoin/core/oracle.hpp"
#include "dsjoin/net/tcp_transport.hpp"
#include "dsjoin/stream/generator.hpp"

using namespace dsjoin;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  common::CliFlags flags("dsjoin example: DFTT over real TCP sockets");
  flags.add_int("nodes", 4, "number of in-process nodes")
      .add_int("seconds", 6, "real-time run duration")
      .add_int("rate", 120, "tuples per node per side per second")
      .add_int("port", 38500, "loopback base port")
      .add_string("policy", "DFTT", "routing policy");
  if (auto s = flags.parse(argc, argv); !s) {
    return s.code() == common::ErrorCode::kFailedPrecondition ? 0 : 1;
  }

  core::SystemConfig config;
  config.nodes = static_cast<std::uint32_t>(flags.get_int("nodes"));
  config.regions = 2;
  config.policy = core::policy_from_string(flags.get_string("policy"));
  config.workload = "ZIPF";
  config.join_half_width_s = 2.0;
  config.dft_window = 512;
  config.kappa = 64.0;
  config.summary_epoch_tuples = 64;

  std::printf("Meshing %u nodes over loopback TCP (%s policy)...\n",
              config.nodes, core::to_string(config.policy));
  net::TcpTransport transport(config.nodes,
                              static_cast<std::uint16_t>(flags.get_int("port")));

  core::MetricsCollector metrics;
  metrics.set_node_count(config.nodes);
  std::mutex metrics_mutex;  // record_pair is called from receiver threads

  // Each node is serialized behind its own mutex: the driver thread feeds
  // local tuples, the transport's receiver thread delivers frames.
  struct GuardedNode {
    std::unique_ptr<core::Node> node;
    std::mutex mutex;
  };
  std::vector<std::unique_ptr<GuardedNode>> nodes;

  // MetricsCollector itself is not thread safe; wrap it.
  class LockedMetrics : public core::MetricsCollector {};
  const auto start = std::chrono::steady_clock::now();

  for (net::NodeId id = 0; id < config.nodes; ++id) {
    auto guarded = std::make_unique<GuardedNode>();
    guarded->node = std::make_unique<core::Node>(config, id, transport, metrics);
    nodes.push_back(std::move(guarded));
  }
  for (net::NodeId id = 0; id < config.nodes; ++id) {
    GuardedNode* guarded = nodes[id].get();
    transport.register_handler(id, [guarded, &metrics_mutex, start](net::Frame&& f) {
      // The metrics collector is shared; nodes only touch it inside
      // record_pair, so one global lock around frame processing keeps the
      // demo simple and safe.
      std::scoped_lock lock(metrics_mutex, guarded->mutex);
      guarded->node->on_frame(std::move(f), seconds_since(start));
    });
  }

  stream::WorkloadParams params;
  params.nodes = config.nodes;
  params.regions = config.regions;
  params.seed = config.seed;
  const auto workload = stream::make_workload(config.workload, params);
  core::ExactJoinOracle oracle(config.join_half_width_s);

  const auto duration = static_cast<double>(flags.get_int("seconds"));
  const auto rate = static_cast<double>(flags.get_int("rate"));
  const double interval = 1.0 / (rate * 2.0 * config.nodes);
  std::uint64_t next_id = 1;
  std::uint64_t arrivals = 0;
  std::printf("Streaming for %.0f s at %g tuples/node/side/s...\n", duration,
              rate);
  while (seconds_since(start) < duration) {
    for (net::NodeId id = 0; id < config.nodes; ++id) {
      for (auto side : {stream::StreamSide::kR, stream::StreamSide::kS}) {
        const double now = seconds_since(start);
        stream::Tuple tuple;
        tuple.id = next_id++;
        tuple.key = workload->next_key(id, side, now);
        tuple.timestamp = now;
        tuple.origin = id;
        tuple.side = side;
        oracle.observe(tuple);
        {
          std::scoped_lock lock(metrics_mutex, nodes[id]->mutex);
          nodes[id]->node->on_local_tuple(tuple, now);
        }
        ++arrivals;
      }
    }
    std::this_thread::sleep_for(
        std::chrono::duration<double>(interval * 2.0 * config.nodes));
  }
  // Let in-flight frames drain, then stop.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  transport.shutdown();

  const auto exact = oracle.total_pairs();
  const auto reported = metrics.distinct_pairs();
  std::printf("\narrivals: %llu   exact pairs: %llu   reported: %llu\n",
              static_cast<unsigned long long>(arrivals),
              static_cast<unsigned long long>(exact),
              static_cast<unsigned long long>(reported));
  if (exact > 0) {
    std::printf("epsilon over real sockets: %.4f\n",
                1.0 - static_cast<double>(reported) / static_cast<double>(exact));
  }
  std::printf("frames: %llu (%llu tuple / %llu summary / %llu result), "
              "%llu bytes\n",
              static_cast<unsigned long long>(transport.stats().total_frames()),
              static_cast<unsigned long long>(
                  transport.stats().frames(net::FrameKind::kTuple)),
              static_cast<unsigned long long>(
                  transport.stats().frames(net::FrameKind::kSummary)),
              static_cast<unsigned long long>(
                  transport.stats().frames(net::FrameKind::kResult)),
              static_cast<unsigned long long>(transport.stats().total_bytes()));
  std::puts("\nThe same Node and RoutingPolicy code ran here over real TCP");
  std::puts("that the experiments run under the deterministic WAN emulator.");
  return 0;
}
