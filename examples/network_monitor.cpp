// Distributed network-traffic monitoring — the paper's forensics scenario.
//
// Monitoring points in several administrative domains (nodes) observe
// packet streams; tracking a malicious source means joining packets seen at
// different domains on the source-host key within a time window (did the
// same host touch both domains?). Flows are bursty and host popularity is
// heavy-tailed with a slowly drifting hot set — the NWRK workload.
//
// The example compares all approximate policies at one operating point so
// an operator can see the accuracy/traffic menu on this workload, then
// drills into the DFTT run: which domains discovered the cross-domain
// correlations.
#include <cstdio>

#include "dsjoin/common/cli.hpp"
#include "dsjoin/common/table.hpp"
#include "dsjoin/core/system.hpp"
#include "dsjoin/net/stats.hpp"

using namespace dsjoin;

int main(int argc, char** argv) {
  common::CliFlags flags("dsjoin example: cross-domain packet correlation");
  flags.add_int("domains", 6, "number of monitoring domains (nodes)")
      .add_int("packets", 2500, "packets per domain per direction")
      .add_double("throttle", 0.5, "forwarding budget knob")
      .add_int("seed", 11, "experiment seed");
  if (auto s = flags.parse(argc, argv); !s) {
    return s.code() == common::ErrorCode::kFailedPrecondition ? 0 : 1;
  }

  core::SystemConfig config;
  config.workload = "NWRK";
  config.nodes = static_cast<std::uint32_t>(flags.get_int("domains"));
  config.regions = std::max(2u, config.nodes / 3);
  config.tuples_per_node = static_cast<std::uint64_t>(flags.get_int("packets"));
  config.throttle = flags.get_double("throttle");
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed"));

  std::printf("Correlating packet streams across %u domains...\n\n",
              config.nodes);

  common::TablePrinter menu("policy menu on the packet-trace workload",
                            {"policy", "correlations_found", "missed_pct",
                             "frames", "bytes", "makespan_s"});
  for (auto kind : {core::PolicyKind::kBase, core::PolicyKind::kDftt,
                    core::PolicyKind::kBloom, core::PolicyKind::kSketch,
                    core::PolicyKind::kDft, core::PolicyKind::kRoundRobin}) {
    auto run_config = config;
    run_config.policy = kind;
    const auto result = core::run_experiment(run_config);
    menu.add(core::to_string(kind), result.reported_pairs,
             100.0 * result.epsilon, result.traffic.total_frames(),
             result.traffic.total_bytes(), result.makespan_s);
  }
  menu.print();

  // Drill-down: per-domain discovery counts under DFTT.
  auto dftt_config = config;
  dftt_config.policy = core::PolicyKind::kDftt;
  core::DspSystem system(dftt_config);
  const auto result = system.run();
  common::TablePrinter drill("DFTT drill-down: discoveries per domain",
                             {"domain", "region", "first_discoveries"});
  const auto& per_node = system.metrics().per_node_discoveries();
  for (net::NodeId id = 0; id < config.nodes; ++id) {
    drill.add(id, id % dftt_config.regions, per_node[id]);
  }
  drill.print();

  std::printf("\nDFTT reported %llu of %llu cross-domain correlations "
              "(%.1f%% missed) at %.2f frames per correlation.\n",
              static_cast<unsigned long long>(result.reported_pairs),
              static_cast<unsigned long long>(result.exact_pairs),
              100.0 * result.epsilon, result.messages_per_result);
  return 0;
}
