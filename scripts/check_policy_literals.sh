#!/usr/bin/env bash
# Policy names have exactly one home: the kPolicyNames registry in
# src/core/policy.cpp, which to_string(), policy_from_string() and
# policy_names_csv() all read. A quoted "DFTT" anywhere else in src/ is a
# shadow spelling that silently diverges when a policy is renamed or
# added — every past drift of this kind was a literal that predated the
# registry. Benches and tests may still match names in *output checks*,
# so only src/ is linted.
set -euo pipefail
cd "$(dirname "$0")/.."

if grep -rnE '"(BASE|RR|DFT|DFTT|BLOOM|SKCH|SPEC|SMPL)"' \
    --include='*.cpp' --include='*.hpp' src \
    | grep -v '^src/core/policy\.cpp:'; then
  echo "error: policy-name string literal outside the kPolicyNames" >&2
  echo "registry (src/core/policy.cpp). Use core::to_string(PolicyKind)" >&2
  echo "or core::policy_from_string() instead." >&2
  exit 1
fi
echo "OK: no policy-name literals outside src/core/policy.cpp."
