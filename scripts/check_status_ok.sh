#!/usr/bin/env bash
# common::Status spells its OK *factory* `Status::ok()` and its instance
# *predicate* `is_ok()`. C++ happily calls a static member through an
# instance, so `if (status.ok())` compiles — and is always true (it just
# constructs a fresh OK status), silently disabling whatever validation it
# was meant to gate. This lint bans the instance-call spelling outright;
# the qualified factory spelling `Status::ok()` does not match the pattern.
set -euo pipefail
cd "$(dirname "$0")/.."

if grep -rnE '(\.|->)ok\(\)' --include='*.cpp' --include='*.hpp' \
    src tests bench tools examples; then
  echo "error: static Status::ok() factory called through an instance" >&2
  echo "(always true). Use is_ok() or the explicit operator bool." >&2
  exit 1
fi
echo "OK: no instance calls of the static Status::ok() factory."
