// Node daemon binary: hosts one core::Node of a distributed run.
//
// Dials the coordinator (dsjoin_coord), receives its node id, experiment
// config and peer list, meshes with the other daemons over TCP, streams
// its slice of the deterministic arrival schedule, and ships its
// discovered pairs back. Exit code 0 on a clean BYE.
#include <cstdio>

#include "dsjoin/common/cli.hpp"
#include "dsjoin/common/log.hpp"
#include "dsjoin/runtime/daemon.hpp"

using namespace dsjoin;

int main(int argc, char** argv) {
  common::CliFlags flags("dsjoin node daemon: one node of a distributed run");
  flags.add_string("coord-host", "127.0.0.1", "coordinator host")
      .add_int("coord-port", 0, "coordinator control port (required)")
      .add_double("connect-timeout", 20.0,
                  "seconds to keep dialing the coordinator")
      .add_bool("pace", false, "replay arrivals in real time")
      .add_bool("verbose", false, "log protocol progress");
  if (auto s = flags.parse(argc, argv); !s) {
    return s.code() == common::ErrorCode::kFailedPrecondition ? 0 : 1;
  }
  common::set_log_level(flags.get_bool("verbose") ? common::LogLevel::kInfo
                                                  : common::LogLevel::kWarn);
  if (flags.get_int("coord-port") <= 0 || flags.get_int("coord-port") > 65535) {
    std::fprintf(stderr, "--coord-port is required (1..65535)\n");
    return 1;
  }

  runtime::DaemonOptions options;
  options.coordinator.host = flags.get_string("coord-host");
  options.coordinator.port =
      static_cast<std::uint16_t>(flags.get_int("coord-port"));
  options.connect_timeout_s = flags.get_double("connect-timeout");
  options.pace = flags.get_bool("pace");

  runtime::NodeDaemon daemon(options);
  const auto status = daemon.run();
  if (!status.is_ok()) {
    std::fprintf(stderr, "daemon (node %u) failed: %s\n", daemon.node_id(),
                 status.to_string().c_str());
    return 1;
  }
  std::printf("daemon: node %u completed cleanly\n", daemon.node_id());
  return 0;
}
