// Coordinator binary for the multi-process distributed runtime.
//
// Binds the control port, admits --nodes daemons (dsjoin_noded), runs one
// experiment, and prints a human summary plus one machine-parseable
// `REPORT key=value ...` line for scripts and the integration tests.
// Exit code 0 means the protocol ran to completion — including degraded
// runs where daemons died mid-stream; only setup failures exit nonzero.
#include <cstdio>
#include <stdexcept>
#include <string>

#include "dsjoin/common/cli.hpp"
#include "dsjoin/common/log.hpp"
#include "dsjoin/runtime/coordinator.hpp"

using namespace dsjoin;

namespace {

/// Publishes the bound control port for whoever spawned us: write to a
/// temp file, then rename — readers polling the path never see a partial
/// write.
bool write_port_file(const std::string& path, std::uint16_t port) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "%u\n", port);
  std::fclose(f);
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  common::CliFlags flags("dsjoin coordinator: drives one distributed run");
  flags.add_int("port", 0, "control port (0 = ephemeral)")
      .add_string("port-file", "", "write the bound control port to this file")
      .add_int("nodes", 4, "number of daemons to admit")
      .add_string("policy", "RR", "routing policy: " + core::policy_names_csv())
      .add_string("workload", "ZIPF", "workload (UNI|ZIPF|FIN|NWRK)")
      .add_int("tuples", 250, "tuples per node per stream side")
      .add_double("rate", 50.0, "arrivals per node per side per second")
      .add_double("half-width", 2.0, "join window half width (s)")
      .add_double("throttle", 0.5, "policy forwarding aggressiveness [0,1]")
      .add_int("seed", 7, "experiment seed")
      .add_double("admit-timeout", 30.0, "seconds to wait for all daemons")
      .add_double("run-timeout", 120.0, "ceiling on the ingest phase (s)")
      .add_double("drain-timeout", 30.0, "ceiling on drain + reports (s)")
      .add_int("coalesce-frames", 32,
               "max logical frames per data-plane wire record (1 = one "
               "record per frame; max 65535)")
      .add_int("coalesce-bytes", 1 << 16,
               "payload-byte budget per coalesced wire record")
      .add_double("summary-sync-epoch", 0.25,
                  "visibility grid (s, virtual time) for stamped summary "
                  "exchange (DESIGN.md section 12)")
      .add_int("quant-bits", 0,
               "preferred mantissa width for coefficient summaries (0 = f64, "
               "8 or 16 = fixed-point with per-block scale)")
      .add_int("sample-capacity", 0,
               "SMPL reservoir capacity per (node, side); 0 derives it from "
               "the summary byte budget (max 32768)")
      .add_int("sample-strata", 8, "SMPL hash strata per reservoir (1..4096)")
      .add_string("queries", "",
                  "registered join queries, semicolon-separated "
                  "POLICY[:throttle[:half_width_s]] specs; empty = "
                  "single-query mode")
      .add_bool("verify", true, "recompute the oracle for epsilon/false pairs")
      .add_bool("verbose", false, "log protocol progress");
  if (auto s = flags.parse(argc, argv); !s) {
    return s.code() == common::ErrorCode::kFailedPrecondition ? 0 : 1;
  }
  common::set_log_level(flags.get_bool("verbose") ? common::LogLevel::kInfo
                                                  : common::LogLevel::kWarn);

  runtime::CoordinatorOptions options;
  options.port = static_cast<std::uint16_t>(flags.get_int("port"));
  options.admit_timeout_s = flags.get_double("admit-timeout");
  options.run_timeout_s = flags.get_double("run-timeout");
  options.drain_timeout_s = flags.get_double("drain-timeout");
  options.verify = flags.get_bool("verify");
  options.config.nodes = static_cast<std::uint32_t>(flags.get_int("nodes"));
  options.config.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  try {
    options.config.policy =
        core::policy_from_string(flags.get_string("policy"));
  } catch (const std::invalid_argument& err) {
    std::fprintf(stderr, "error: %s\n", err.what());
    return 1;
  }
  options.config.workload = flags.get_string("workload");
  options.config.tuples_per_node =
      static_cast<std::uint64_t>(flags.get_int("tuples"));
  options.config.arrivals_per_second = flags.get_double("rate");
  options.config.join_half_width_s = flags.get_double("half-width");
  options.config.throttle = flags.get_double("throttle");
  options.config.coalesce_frames =
      static_cast<std::uint32_t>(flags.get_int("coalesce-frames"));
  options.config.coalesce_bytes =
      static_cast<std::uint32_t>(flags.get_int("coalesce-bytes"));
  options.config.summary_sync_epoch_s = flags.get_double("summary-sync-epoch");
  options.config.summary_quant_bits =
      static_cast<std::uint32_t>(flags.get_int("quant-bits"));
  const std::int64_t sample_capacity = flags.get_int("sample-capacity");
  options.config.sample_capacity =
      sample_capacity < 0 ? ~0u : static_cast<std::uint32_t>(sample_capacity);
  const std::int64_t sample_strata = flags.get_int("sample-strata");
  options.config.sample_strata =
      sample_strata < 0 ? 0 : static_cast<std::uint32_t>(sample_strata);
  const auto queries =
      core::parse_queries(flags.get_string("queries"), options.config);
  if (!queries) {
    std::fprintf(stderr, "error: %s\n", queries.status().message().c_str());
    return 1;
  }
  options.config.queries = queries.value();
  // The one validity gate every CLI site funnels through: ranges live in
  // core::validate_config, not per flag.
  if (auto valid = core::validate_config(options.config); !valid.is_ok()) {
    std::fprintf(stderr, "error: %s\n", valid.message().c_str());
    return 1;
  }

  runtime::Coordinator coordinator(options);
  std::printf("coordinator: control port %u, waiting for %u daemons\n",
              coordinator.port(), options.config.nodes);
  std::fflush(stdout);
  const std::string port_file = flags.get_string("port-file");
  if (!port_file.empty() && !write_port_file(port_file, coordinator.port())) {
    std::fprintf(stderr, "failed to write port file %s\n", port_file.c_str());
    return 1;
  }

  const runtime::RunReport report = coordinator.run();

  if (!report.clean) {
    std::fprintf(stderr, "run failed: %s\n", report.error.c_str());
    std::printf("REPORT clean=0 error=\"%s\"\n", report.error.c_str());
    return 1;
  }
  std::printf("\nnodes: %u admitted, %u failed mid-run\n",
              report.nodes_admitted, report.nodes_failed);
  std::printf("arrivals ingested: %llu\n",
              static_cast<unsigned long long>(report.total_arrivals));
  std::printf("pairs: %llu reported (exact %llu, false %llu)  epsilon %.4f\n",
              static_cast<unsigned long long>(report.reported_pairs),
              static_cast<unsigned long long>(report.exact_pairs),
              static_cast<unsigned long long>(report.false_pairs),
              report.epsilon);
  std::printf("traffic: %llu frames, %llu bytes\n",
              static_cast<unsigned long long>(report.traffic.total_frames()),
              static_cast<unsigned long long>(report.traffic.total_bytes()));
  if (report.per_query.size() > 1) {
    for (const auto& query : report.per_query) {
      std::printf(
          "query %u: %llu reported (exact %llu, false %llu)  epsilon %.4f\n",
          query.query_id,
          static_cast<unsigned long long>(query.reported_pairs),
          static_cast<unsigned long long>(query.exact_pairs),
          static_cast<unsigned long long>(query.false_pairs), query.epsilon);
    }
  }
  std::printf(
      "REPORT clean=1 nodes=%u failed=%u arrivals=%llu exact=%llu "
      "reported=%llu false=%llu epsilon=%.6f frames=%llu bytes=%llu\n",
      report.nodes_admitted, report.nodes_failed,
      static_cast<unsigned long long>(report.total_arrivals),
      static_cast<unsigned long long>(report.exact_pairs),
      static_cast<unsigned long long>(report.reported_pairs),
      static_cast<unsigned long long>(report.false_pairs), report.epsilon,
      static_cast<unsigned long long>(report.traffic.total_frames()),
      static_cast<unsigned long long>(report.traffic.total_bytes()));
  return 0;
}
