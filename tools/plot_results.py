#!/usr/bin/env python3
"""Plot the CSV blocks emitted by the dsjoin bench binaries.

Each bench prints one or more blocks of the form

    # csv <title>
    col1,col2,...
    v,v,...

Usage:
    for b in build/bench/*; do $b; done | tee bench_output.txt
    python3 tools/plot_results.py bench_output.txt --outdir plots/

Produces one PNG per CSV block (requires matplotlib; falls back to writing
the extracted CSV files when it is unavailable).
"""
import argparse
import csv
import io
import os
import re
import sys


def extract_blocks(text):
    """Yield (title, header, rows) for every '# csv' block in the text."""
    lines = text.splitlines()
    i = 0
    while i < len(lines):
        if lines[i].startswith("# csv "):
            title = lines[i][6:].strip()
            body = []
            i += 1
            while i < len(lines) and lines[i] and not lines[i].startswith(("#", "=")):
                body.append(lines[i])
                i += 1
            if len(body) >= 2:
                reader = csv.reader(io.StringIO("\n".join(body)))
                rows = list(reader)
                yield title, rows[0], rows[1:]
        else:
            i += 1


def slug(title):
    return re.sub(r"[^a-z0-9]+", "_", title.lower()).strip("_")[:80]


def is_number(s):
    try:
        float(s)
        return True
    except ValueError:
        return False


def plot_block(title, header, rows, outdir):
    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    x_label = header[0]
    fig, ax = plt.subplots(figsize=(7, 4.5))
    if all(is_number(r[0]) for r in rows) and len(header) > 1:
        xs = [float(r[0]) for r in rows]
        for col in range(1, len(header)):
            ys = [r[col] for r in rows]
            if not all(is_number(v) for v in ys):
                continue
            ax.plot(xs, [float(v) for v in ys], marker="o", label=header[col])
        ax.set_xlabel(x_label)
        ax.legend(fontsize=8)
    else:
        # Categorical first column: bar chart of the first numeric column.
        num_col = next((c for c in range(1, len(header))
                        if all(is_number(r[c]) for r in rows)), None)
        if num_col is None:
            plt.close(fig)
            return False
        ax.bar([f"{r[0]}" for r in rows], [float(r[num_col]) for r in rows])
        ax.set_ylabel(header[num_col])
        ax.tick_params(axis="x", rotation=45, labelsize=7)
    ax.set_title(title, fontsize=9)
    fig.tight_layout()
    path = os.path.join(outdir, slug(title) + ".png")
    fig.savefig(path, dpi=130)
    plt.close(fig)
    print(f"wrote {path}")
    return True


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("input", help="bench output file ('-' for stdin)")
    parser.add_argument("--outdir", default="plots", help="output directory")
    args = parser.parse_args()

    text = sys.stdin.read() if args.input == "-" else open(args.input).read()
    os.makedirs(args.outdir, exist_ok=True)

    blocks = list(extract_blocks(text))
    if not blocks:
        print("no '# csv' blocks found", file=sys.stderr)
        return 1

    try:
        import matplotlib  # noqa: F401
        have_mpl = True
    except ImportError:
        have_mpl = False
        print("matplotlib unavailable; writing raw CSVs instead", file=sys.stderr)

    for title, header, rows in blocks:
        if have_mpl:
            plot_block(title, header, rows, args.outdir)
        else:
            path = os.path.join(args.outdir, slug(title) + ".csv")
            with open(path, "w", newline="") as fh:
                writer = csv.writer(fh)
                writer.writerow(header)
                writer.writerows(rows)
            print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
